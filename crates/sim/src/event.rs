//! The event queue at the heart of the discrete-event engine.
//!
//! [`EventQueue`] is a priority queue ordered by firing time with a
//! monotonically increasing sequence number as tiebreak, so events scheduled
//! at the same instant fire in scheduling order. That property is what keeps
//! runs deterministic: the simulator never depends on hash ordering or heap
//! internals.
//!
//! # Implementation
//!
//! Payloads live in a generation-tagged slab; the scheduling structure holds
//! only compact `(time, seq, slot, gen)` entries. Since PR 4 that structure
//! is a **hierarchical timing wheel** rather than a binary heap: six levels
//! of 64 slots at a ~1 ms base granularity (each level 64× coarser than the
//! one below), with a small overflow heap for the rare event further out
//! than the wheel's ~800-day span. The simulator's event mix is dominated by
//! short-horizon MAC timers, which land in the bottom two levels and cost
//! O(1) to file and O(1) amortized to pop; a binary heap paid O(log n) with
//! a cache miss per comparison on the same workload.
//!
//! Timestamps sharing a granule are ordered by an explicit sort on
//! `(time, seq)` when their bucket is opened, so the pop order — and
//! therefore every simulation outcome — is bit-for-bit identical to the
//! heap implementation, which is preserved as [`ReferenceEventQueue`] and
//! checked against the wheel by a differential property test.
//!
//! Cancellation ([`EventQueue::cancel`]) is an O(1) slot invalidation —
//! the wheel entry stays behind and is skipped when reached (lazy
//! deletion). A slot's generation is bumped every time the slot dies
//! (fires, is cancelled, or is cleared), so a stale [`EventToken`] can
//! never touch a recycled slot: tokens embed the generation they were
//! issued under.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies a scheduled event so it can be cancelled later.
///
/// Encodes the slab slot and the slot generation the event was issued
/// under; a token outlives its event harmlessly (cancel just returns
/// `false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventToken(u64);

impl EventToken {
    fn new(slot: u32, gen: u32) -> Self {
        EventToken(u64::from(slot) << 32 | u64::from(gen))
    }

    fn slot(self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn generation(self) -> u32 {
        self.0 as u32
    }
}

/// One slab slot: the payload of a live event, tagged with a reuse
/// generation.
#[derive(Debug)]
struct Slot<E> {
    /// Bumped whenever the slot dies; tokens and wheel entries carrying an
    /// older generation are stale.
    gen: u32,
    /// `Some` while the event is live.
    payload: Option<E>,
}

/// Compact scheduling entry; the payload stays in the slab.
#[derive(Debug, Clone, Copy)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap but we want the earliest event;
        // equal instants fire in scheduling (seq) order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Ticks per level-0 granule: 2^10 µs ≈ 1 ms. Events inside one granule
/// are ordered by an explicit `(at, seq)` sort when the granule opens.
const GRAN_BITS: u32 = 10;
/// log2 of the slots per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `l` spans 64^(l+1) granules, so six levels cover
/// 2^36 granules ≈ 2^46 µs ≈ 800 days of simulated time from `base`.
const LEVELS: usize = 6;
/// Granule bits covered by the wheel; entries further out go to the
/// overflow heap until `base` reaches their 2^36-granule block.
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use dftmsn_sim::event::EventQueue;
/// use dftmsn_sim::time::{SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_secs(2), "second");
/// q.schedule_at(SimTime::from_secs(1), "first");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "first"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    /// Slots whose payload has died and may be reused.
    free: Vec<u32>,
    /// Number of live (schedulable, not cancelled) events.
    live: usize,
    /// Total events popped over the queue's lifetime (for throughput
    /// reporting).
    popped: u64,
    next_seq: u64,
    now: SimTime,
    /// The wheel: per-level slot buckets, in firing order only per granule
    /// (each bucket is sorted when it reaches the current granule).
    levels: Box<[[Vec<Entry>; SLOTS]; LEVELS]>,
    /// Per-level occupancy bitmap: bit `s` set iff `levels[l][s]` is
    /// non-empty. Slots in use are always strictly ahead of the wheel
    /// cursor at their level, so "next slot" is a plain `trailing_zeros`.
    occ: [u64; LEVELS],
    /// Events beyond the wheel span, ordered by `(at, seq)`.
    overflow: BinaryHeap<Entry>,
    /// The opened current granule, sorted by `(at, seq)`, served from
    /// `cur_idx`. Late arrivals for an already-opened granule are
    /// insertion-sorted into the unserved tail.
    cur: Vec<Entry>,
    cur_idx: usize,
    /// Wheel position in granules (`ticks >> GRAN_BITS`).
    base: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            popped: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            levels: Box::new(std::array::from_fn(|_| std::array::from_fn(|_| Vec::new()))),
            occ: [0; LEVELS],
            overflow: BinaryHeap::new(),
            cur: Vec::new(),
            cur_idx: 0,
            base: 0,
        }
    }

    /// The current simulation instant (the firing time of the most recently
    /// popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (not cancelled) scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events popped (fired) over the queue's lifetime.
    #[must_use]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`now`](Self::now)); scheduling
    /// exactly at `now` is allowed and fires after already-queued events at
    /// the same instant.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventToken {
        let seq = self.next_seq;
        self.schedule_at_seq(at, payload, seq)
    }

    /// Schedules `payload` at `at` under an externally supplied sequence
    /// number. [`ShardedEventQueue`] issues sequence numbers from one
    /// global counter so same-instant events keep scheduling order across
    /// lanes; within one queue the number must never move backwards (the
    /// queue's own counter is advanced past it).
    fn schedule_at_seq(&mut self, at: SimTime, payload: E, seq: u64) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        debug_assert!(seq >= self.next_seq, "sequence number regression");
        self.next_seq = seq + 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].payload = Some(payload);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("slab overflow");
                self.slots.push(Slot {
                    gen: 0,
                    payload: Some(payload),
                });
                s
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.file(Entry { at, seq, slot, gen });
        self.live += 1;
        EventToken::new(slot, gen)
    }

    /// Schedules `payload` after the relative delay `after`.
    pub fn schedule_after(&mut self, after: SimDuration, payload: E) -> EventToken {
        let at = self.now + after;
        self.schedule_at(at, payload)
    }

    /// Files an entry into the wheel structure: the open granule, a wheel
    /// level, or the overflow heap.
    fn file(&mut self, e: Entry) {
        let tg = e.at.ticks() >> GRAN_BITS;
        if tg <= self.base {
            // The entry's granule is already open (or the wheel has been
            // positioned past it by a peek): insertion-sort it into the
            // unserved tail of `cur`. Everything already served is in the
            // past, so the tail is the right region.
            let pos = self.cur_idx
                + self.cur[self.cur_idx..].partition_point(|x| (x.at, x.seq) < (e.at, e.seq));
            self.cur.insert(pos, e);
            return;
        }
        let diff = tg ^ self.base;
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(e);
            return;
        }
        let slot = ((tg >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level][slot].push(e);
        self.occ[level] |= 1 << slot;
    }

    /// Moves overflow entries whose times now fall inside the wheel span
    /// (same 2^36-granule block as `base`) into the wheel.
    fn migrate_overflow(&mut self) {
        while let Some(head) = self.overflow.peek() {
            let tg = head.at.ticks() >> GRAN_BITS;
            if (tg ^ self.base) >> WHEEL_BITS != 0 {
                break;
            }
            let e = self.overflow.pop().expect("peeked entry exists");
            self.file(e);
        }
    }

    /// Repositions the wheel on the next occupied granule and opens it into
    /// `cur`. Returns `false` when no entries remain anywhere (`cur`,
    /// wheel, overflow). Stale (cancelled) entries count as present here;
    /// the serve loops skip them.
    fn advance(&mut self) -> bool {
        debug_assert!(self.cur_idx >= self.cur.len(), "advance with unserved cur");
        self.cur.clear();
        self.cur_idx = 0;
        loop {
            if self.cur_idx < self.cur.len() {
                return true;
            }
            let Some(level) = (0..LEVELS).find(|&l| self.occ[l] != 0) else {
                if self.overflow.is_empty() {
                    return false;
                }
                // The wheel drained: jump straight to the overflow head's
                // block and pull in everything that now fits.
                let head = self.overflow.peek().expect("overflow non-empty");
                self.base = head.at.ticks() >> GRAN_BITS;
                self.migrate_overflow();
                continue;
            };
            // Occupied slots are strictly ahead of the cursor at their
            // level, so the lowest set bit is the next one to fire.
            let slot = u64::from(self.occ[level].trailing_zeros());
            if level == 0 {
                // Open the granule: advance the cursor onto it and sort its
                // bucket into firing order.
                self.base = (self.base & !(SLOTS as u64 - 1)) | slot;
                self.occ[0] &= !(1 << slot);
                let mut bucket = std::mem::take(&mut self.levels[0][slot as usize]);
                self.cur.append(&mut bucket);
                self.levels[0][slot as usize] = bucket;
                self.cur.sort_unstable_by_key(|e| (e.at, e.seq));
                return true;
            }
            // Cascade: advance the cursor to the slot's span start and
            // redistribute its bucket into the levels below (entries whose
            // lower digits are all zero land directly in `cur`).
            let shift = SLOT_BITS * level as u32;
            let upper = (self.base >> (shift + SLOT_BITS)) << (shift + SLOT_BITS);
            self.base = upper | slot << shift;
            self.occ[level] &= !(1 << slot);
            let mut bucket = std::mem::take(&mut self.levels[level][slot as usize]);
            for e in bucket.drain(..) {
                self.file(e);
            }
            self.levels[level][slot as usize] = bucket;
        }
    }

    /// Cancels a previously scheduled event in O(1).
    ///
    /// Returns `true` if the event was still pending. The payload is
    /// dropped immediately; the wheel entry stays behind (lazy deletion)
    /// and is skipped when reached. Tokens for events that already fired,
    /// were already cancelled, or whose slot has since been reused by a
    /// newer generation all return `false`.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let Some(slot) = self.slots.get_mut(token.slot() as usize) else {
            return false;
        };
        if slot.gen != token.generation() || slot.payload.is_none() {
            // Already fired / cancelled / recycled, or never ours.
            return false;
        }
        slot.payload = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(token.slot());
        self.live -= 1;
        true
    }

    /// Frees the slot behind an entry and returns its payload (the entry
    /// must be live: generations matched).
    fn retire(&mut self, entry: Entry) -> E {
        let slot = &mut self.slots[entry.slot as usize];
        let payload = slot.payload.take().expect("live slot has a payload");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(entry.slot);
        self.live -= 1;
        payload
    }

    /// Pops the earliest live event, advancing the clock to its instant.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            while self.cur_idx < self.cur.len() {
                let entry = self.cur[self.cur_idx];
                self.cur_idx += 1;
                if self.slots[entry.slot as usize].gen != entry.gen {
                    // Cancelled (slot died) or recycled under a newer token.
                    continue;
                }
                let payload = self.retire(entry);
                debug_assert!(entry.at >= self.now, "event time regression");
                self.now = entry.at;
                self.popped += 1;
                return Some((entry.at, payload));
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// The instant of the next live event without popping it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            while self.cur_idx < self.cur.len() {
                let entry = self.cur[self.cur_idx];
                if self.slots[entry.slot as usize].gen != entry.gen {
                    self.cur_idx += 1;
                    continue;
                }
                return Some(entry.at);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Like [`peek_time`](Self::peek_time), but also exposes the sequence
    /// number of the next live event — the full `(time, seq)` ordering key
    /// the lane-merge in [`ShardedEventQueue`] selects on.
    #[must_use]
    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        loop {
            while self.cur_idx < self.cur.len() {
                let entry = self.cur[self.cur_idx];
                if self.slots[entry.slot as usize].gen != entry.gen {
                    self.cur_idx += 1;
                    continue;
                }
                return Some((entry.at, entry.seq));
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Live entries in firing order, for internal merging/draining.
    fn live_entries(&self) -> Vec<Entry> {
        let is_live = |e: &&Entry| self.slots[e.slot as usize].gen == e.gen;
        let mut entries: Vec<Entry> = Vec::with_capacity(self.live);
        entries.extend(self.cur[self.cur_idx..].iter().filter(is_live));
        for level in self.levels.iter() {
            for bucket in level.iter() {
                entries.extend(bucket.iter().filter(is_live));
            }
        }
        entries.extend(self.overflow.iter().filter(is_live));
        entries.sort_unstable_by_key(|e| (e.at, e.seq));
        entries
    }

    /// Every live pending event as `(firing time, payload)` references in
    /// firing order — the queue's logical contents, for checkpointing.
    ///
    /// Cancelled entries (lazy-deleted wheel residue) are excluded. The
    /// order is exactly the order [`pop`](Self::pop) would serve them.
    #[must_use]
    pub fn pending(&self) -> Vec<(SimTime, &E)> {
        self.live_entries()
            .into_iter()
            .map(|e| {
                let payload = self.slots[e.slot as usize]
                    .payload
                    .as_ref()
                    .expect("live slot has a payload");
                (e.at, payload)
            })
            .collect()
    }

    /// Live pending events with their `(time, seq)` keys, in firing order.
    fn pending_keyed(&self) -> Vec<(SimTime, u64, &E)> {
        self.live_entries()
            .into_iter()
            .map(|e| {
                let payload = self.slots[e.slot as usize]
                    .payload
                    .as_ref()
                    .expect("live slot has a payload");
                (e.at, e.seq, payload)
            })
            .collect()
    }

    /// Removes every live event and returns them with their keys, in
    /// firing order. Used by [`ShardedEventQueue::reshard`] to re-file a
    /// lane's contents under a new lane layout without disturbing the
    /// global `(time, seq)` order.
    fn drain_pending(&mut self) -> Vec<(SimTime, u64, E)> {
        let entries = self.live_entries();
        let drained = entries
            .into_iter()
            .map(|e| {
                let slot = &mut self.slots[e.slot as usize];
                let payload = slot.payload.take().expect("live slot has a payload");
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(e.slot);
                (e.at, e.seq, payload)
            })
            .collect();
        self.live = 0;
        self.clear();
        drained
    }

    /// Rebuilds a queue from checkpointed state: the clock at `now`, the
    /// lifetime pop counter at `popped`, and `events` pending in firing
    /// order (as produced by [`pending`](Self::pending)).
    ///
    /// Fresh sequence numbers are assigned in list order, so same-instant
    /// events keep their relative order, and events scheduled after the
    /// restore sort behind every restored one at the same instant — exactly
    /// the order the uninterrupted run would have used. Tokens issued
    /// before the checkpoint are not revived.
    ///
    /// # Panics
    ///
    /// Panics if any event fires before `now`.
    #[must_use]
    pub fn restore(now: SimTime, popped: u64, events: Vec<(SimTime, E)>) -> Self {
        let mut q = Self::new();
        q.now = now;
        q.base = now.ticks() >> GRAN_BITS;
        q.popped = popped;
        for (at, payload) in events {
            q.schedule_at(at, payload);
        }
        q
    }

    /// Removes every pending event.
    ///
    /// Slots are invalidated, not deallocated, so tokens issued before the
    /// clear can never cancel events scheduled after it.
    pub fn clear(&mut self) {
        for level in self.levels.iter_mut() {
            for bucket in level.iter_mut() {
                bucket.clear();
            }
        }
        self.occ = [0; LEVELS];
        self.overflow.clear();
        self.cur.clear();
        self.cur_idx = 0;
        // Re-anchor the wheel at the clock so future schedules spread over
        // the levels instead of piling into the open granule.
        self.base = self.now.ticks() >> GRAN_BITS;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.payload.take().is_some() {
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.live = 0;
    }
}

/// A deterministic future-event list split across per-shard timing-wheel
/// lanes.
///
/// Each lane is a full [`EventQueue`] (its own hierarchical wheel, slab and
/// overflow heap); sequence numbers come from **one global counter** shared
/// by every lane. [`pop`](Self::pop) serves the minimum `(time, seq)` over
/// the lane heads, and since each lane pops its own contents in `(time,
/// seq)` order, the global pop order is the order of a single queue holding
/// every event — *for any assignment of events to lanes*. That is the
/// determinism contract of the sharded world engine: the lane an event is
/// filed into is pure placement (cache locality, per-shard telemetry), never
/// semantics, so `shards = N` replays bit-identically to `shards = 1`.
///
/// Cancellation is not exposed: the simulator's timers are epoch-guarded
/// (implicitly cancelled by a staleness check at fire time), so the sharded
/// queue does not need to route tokens back to their lane.
///
/// # Examples
///
/// ```
/// use dftmsn_sim::event::ShardedEventQueue;
/// use dftmsn_sim::time::SimTime;
///
/// let mut q = ShardedEventQueue::new(4);
/// q.schedule_at_on(3, SimTime::from_secs(2), "second");
/// q.schedule_at_on(0, SimTime::from_secs(1), "first");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "second")));
/// ```
#[derive(Debug)]
pub struct ShardedEventQueue<E> {
    lanes: Vec<EventQueue<E>>,
    /// The global sequence counter all lanes share.
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> ShardedEventQueue<E> {
    /// Creates an empty queue with `lanes` lanes (at least one) and the
    /// clock at [`SimTime::ZERO`].
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        assert!(lanes >= 1, "a sharded queue needs at least one lane");
        ShardedEventQueue {
            lanes: (0..lanes).map(|_| EventQueue::new()).collect(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Live events currently filed in `lane` (telemetry).
    #[must_use]
    pub fn lane_len(&self, lane: usize) -> usize {
        self.lanes[lane].len()
    }

    /// The current simulation instant (the firing time of the most
    /// recently popped event, across all lanes).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live scheduled events across all lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.iter().map(EventQueue::len).sum()
    }

    /// True when no live events remain in any lane.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(EventQueue::is_empty)
    }

    /// Total events popped over the queue's lifetime.
    #[must_use]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` at the absolute instant `at` in `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before [`now`](Self::now) or `lane` is out of
    /// range.
    pub fn schedule_at_on(&mut self, lane: usize, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        // The lane's own clock lags the global clock (it only advances when
        // the lane is popped from), so its past-scheduling assert is
        // subsumed by the one above.
        let _ = self.lanes[lane].schedule_at_seq(at, payload, seq);
    }

    /// Schedules `payload` after the relative delay `after` in `lane`.
    pub fn schedule_after_on(&mut self, lane: usize, after: SimDuration, payload: E) {
        let at = self.now + after;
        self.schedule_at_on(lane, at, payload);
    }

    /// Schedules at an absolute instant in lane 0 (convenience for events
    /// with no owning shard).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        self.schedule_at_on(0, at, payload);
    }

    /// Schedules after a relative delay in lane 0.
    pub fn schedule_after(&mut self, after: SimDuration, payload: E) {
        self.schedule_after_on(0, after, payload);
    }

    /// Pops the earliest live event across all lanes, advancing the clock
    /// to its instant. Ties are impossible: sequence numbers are globally
    /// unique.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (k, lane) in self.lanes.iter_mut().enumerate() {
            if let Some((t, s)) = lane.peek_key() {
                if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((t, s, k));
                }
            }
        }
        let (_, _, k) = best?;
        let (t, payload) = self.lanes[k].pop().expect("peeked lane has an event");
        self.now = t;
        self.popped += 1;
        Some((t, payload))
    }

    /// Pops the earliest live event like [`pop`](Self::pop), also returning
    /// its global sequence number. The parallel epoch executor drains with
    /// this so it can (a) merge drained events against interval-local
    /// spawns by the exact `(time, seq)` key the sequential engine uses,
    /// and (b) prove its commit-time renumbering reproduced the sequential
    /// counter stream.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (k, lane) in self.lanes.iter_mut().enumerate() {
            if let Some((t, s)) = lane.peek_key() {
                if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((t, s, k));
                }
            }
        }
        let (_, s, k) = best?;
        let (t, payload) = self.lanes[k].pop().expect("peeked lane has an event");
        self.now = t;
        self.popped += 1;
        Some((t, s, payload))
    }

    /// The `(time, seq)` key of the next live event without popping it.
    #[must_use]
    pub fn peek_next_key(&mut self) -> Option<(SimTime, u64)> {
        self.lanes.iter_mut().filter_map(EventQueue::peek_key).min()
    }

    /// Draws the next global sequence number without filing an event.
    ///
    /// This is the commit half of the parallel epoch executor's
    /// provisional-sequence scheme: workers record spawns against
    /// provisional ids, and the commit walk replays them in the exact
    /// order a sequential run would have reached each scheduling call,
    /// drawing the real sequence numbers here. After the walk the counter
    /// is bit-identical to the sequential run's.
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Files `payload` at `at` in `lane` under an externally drawn `seq`
    /// (from [`alloc_seq`](Self::alloc_seq)). Pairs with the commit walk:
    /// events spawned during a parallel interval but due after it are
    /// parked, renumbered in sequential order, and re-filed through here.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before [`now`](Self::now), `lane` is out of
    /// range, or `seq` was not previously drawn from the global counter.
    pub fn schedule_preassigned(&mut self, lane: usize, at: SimTime, payload: E, seq: u64) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        assert!(seq < self.next_seq, "preassigned seq {seq} was never drawn");
        let _ = self.lanes[lane].schedule_at_seq(at, payload, seq);
    }

    /// Accounts for `n` events consumed outside the queue (spawned and
    /// executed entirely within a parallel interval, so never filed). Keeps
    /// the lifetime [`popped`](Self::popped) counter — and everything
    /// derived from it, down to checkpoint bytes — identical to a
    /// sequential run that filed and popped them.
    pub fn note_external_pops(&mut self, n: u64) {
        self.popped += n;
    }

    /// Advances the queue clock to `t` without popping anything. The
    /// parallel interval executor calls this after its commit walk when
    /// the latest event it consumed out-of-queue (a spawned event executed
    /// inside the interval) lies past the last *drained* event, so the
    /// clock matches the sequential run's "time of the most recently
    /// processed event" exactly.
    ///
    /// # Panics
    ///
    /// Panics if `t` would move the clock backwards.
    pub fn advance_now(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_now cannot rewind the clock");
        self.now = t;
    }

    /// The instant of the next live event without popping it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.lanes
            .iter_mut()
            .filter_map(EventQueue::peek_key)
            .min()
            .map(|(t, _)| t)
    }

    /// Every live pending event as `(firing time, payload)` references in
    /// global firing order, for checkpointing. The lane split is *not*
    /// part of the queue's logical contents — restoring the same list into
    /// any lane layout replays identically.
    #[must_use]
    pub fn pending(&self) -> Vec<(SimTime, &E)> {
        let mut all: Vec<(SimTime, u64, &E)> = Vec::with_capacity(self.len());
        for lane in &self.lanes {
            all.extend(lane.pending_keyed());
        }
        all.sort_unstable_by_key(|&(t, s, _)| (t, s));
        all.into_iter().map(|(t, _, e)| (t, e)).collect()
    }

    /// Rebuilds a queue from checkpointed state: `lanes` lanes, the clock
    /// at `now`, the lifetime pop counter at `popped`, and `events` pending
    /// in firing order (as produced by [`pending`](Self::pending)).
    /// `route` picks the lane each restored event is filed into; per the
    /// lane-placement contract it affects locality only, never replay
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero, any event fires before `now`, or `route`
    /// returns an out-of-range lane.
    #[must_use]
    pub fn restore(
        lanes: usize,
        now: SimTime,
        popped: u64,
        events: Vec<(SimTime, E)>,
        mut route: impl FnMut(&E) -> usize,
    ) -> Self {
        let mut q = Self::new(lanes);
        q.now = now;
        q.popped = popped;
        for lane in &mut q.lanes {
            lane.now = now;
            lane.base = now.ticks() >> GRAN_BITS;
        }
        for (at, payload) in events {
            let lane = route(&payload);
            q.schedule_at_on(lane, at, payload);
        }
        q
    }

    /// Re-files every pending event into a fresh `lanes`-lane layout,
    /// preserving each event's global sequence number — and therefore the
    /// exact replay order. Used when the shard count of a live simulation
    /// changes (e.g. after resuming a checkpoint onto a different core
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or `route` returns an out-of-range lane.
    pub fn reshard(&mut self, lanes: usize, mut route: impl FnMut(&E) -> usize) {
        assert!(lanes >= 1, "a sharded queue needs at least one lane");
        let mut all: Vec<(SimTime, u64, E)> = Vec::with_capacity(self.len());
        for lane in &mut self.lanes {
            all.append(&mut lane.drain_pending());
        }
        // File in ascending sequence order: each lane's internal counter
        // only moves forward, and the firing order is carried entirely by
        // the preserved `(time, seq)` keys.
        all.sort_unstable_by_key(|&(_, s, _)| s);
        let mut fresh: Vec<EventQueue<E>> = (0..lanes).map(|_| EventQueue::new()).collect();
        for lane in &mut fresh {
            lane.now = self.now;
            lane.base = self.now.ticks() >> GRAN_BITS;
        }
        self.lanes = fresh;
        for (at, seq, payload) in all {
            let lane = route(&payload);
            let _ = self.lanes[lane].schedule_at_seq(at, payload, seq);
        }
    }
}

/// The pre-wheel event queue: a binary heap over the same generation-tagged
/// slab, kept as the ordering oracle for the timing wheel.
///
/// Semantics are identical to [`EventQueue`] — same token scheme, same
/// `(time, seq)` pop order, same lazy-deletion cancel — and a differential
/// property test in `tests/properties.rs` drives both through randomized
/// schedule/cancel/pop workloads asserting they never diverge. Scheduling
/// and popping cost O(log n) here versus the wheel's O(1); use this only
/// as a reference.
#[derive(Debug)]
pub struct ReferenceEventQueue<E> {
    heap: BinaryHeap<Entry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
    popped: u64,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceEventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        ReferenceEventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            popped: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (not cancelled) scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events popped (fired) over the queue's lifetime.
    #[must_use]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`now`](Self::now)).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].payload = Some(payload);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("slab overflow");
                self.slots.push(Slot {
                    gen: 0,
                    payload: Some(payload),
                });
                s
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(Entry { at, seq, slot, gen });
        self.live += 1;
        EventToken::new(slot, gen)
    }

    /// Schedules `payload` after the relative delay `after`.
    pub fn schedule_after(&mut self, after: SimDuration, payload: E) -> EventToken {
        let at = self.now + after;
        self.schedule_at(at, payload)
    }

    /// Cancels a previously scheduled event in O(1) (lazy deletion).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let Some(slot) = self.slots.get_mut(token.slot() as usize) else {
            return false;
        };
        if slot.gen != token.generation() || slot.payload.is_none() {
            return false;
        }
        slot.payload = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(token.slot());
        self.live -= 1;
        true
    }

    fn retire(&mut self, entry: Entry) -> E {
        let slot = &mut self.slots[entry.slot as usize];
        let payload = slot.payload.take().expect("live slot has a payload");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(entry.slot);
        self.live -= 1;
        payload
    }

    /// Pops the earliest live event, advancing the clock to its instant.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.slots[entry.slot as usize].gen != entry.gen {
                continue;
            }
            let payload = self.retire(entry);
            debug_assert!(entry.at >= self.now, "event time regression");
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, payload));
        }
        None
    }

    /// The instant of the next live event without popping it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.slots[entry.slot as usize].gen != entry.gen {
                self.heap.pop();
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Removes every pending event (slots invalidated, not deallocated).
    pub fn clear(&mut self) {
        self.heap.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.payload.take().is_some() {
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 3u32);
        q.schedule_at(SimTime::from_secs(1), 1u32);
        q.schedule_at(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10u32 {
            q.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ties_fire_in_scheduling_order_across_slot_reuse() {
        // Interleave cancellations so later events land in recycled slots
        // with *lower* slot indices; the tie order must still follow the
        // scheduling sequence, not slab layout.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        let a = q.schedule_at(t, 100u32); // slot 0
        let b = q.schedule_at(t, 101u32); // slot 1
        assert!(q.cancel(a));
        assert!(q.cancel(b));
        for i in 0..6u32 {
            q.schedule_at(t, i); // first two reuse slots 1, 0
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(4), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "a");
        q.pop();
        q.schedule_after(SimDuration::from_secs(5), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut q = EventQueue::new();
        let keep = q.schedule_at(SimTime::from_secs(1), "keep");
        let drop = q.schedule_at(SimTime::from_secs(2), "drop");
        let _ = keep;
        assert!(q.cancel(drop));
        assert!(!q.cancel(drop), "double-cancel reports false");
        let all: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(all, vec!["keep"]);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancelling_a_fired_event_is_a_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.pop();
        assert!(!q.cancel(a), "token for fired event");
        assert_eq!(q.len(), 1, "len unaffected by stale cancel");
    }

    #[test]
    fn stale_token_cannot_cancel_a_recycled_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        assert!(q.cancel(a));
        // "b" reuses a's slot under a newer generation.
        let b = q.schedule_at(SimTime::from_secs(2), "b");
        assert!(!q.cancel(a), "stale token must be rejected across reuse");
        assert_eq!(q.len(), 1);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_secs(2), "b"));
        assert!(!q.cancel(b), "token for fired event after reuse");
    }

    #[test]
    fn token_from_before_clear_cannot_touch_later_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "old");
        q.clear();
        assert!(q.is_empty());
        let b = q.schedule_at(SimTime::from_secs(2), "new");
        assert!(!q.cancel(a), "pre-clear token must be dead");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
    }

    #[test]
    fn cancelled_payloads_are_dropped_eagerly() {
        use std::rc::Rc;
        let marker = Rc::new(());
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), Rc::clone(&marker));
        assert_eq!(Rc::strong_count(&marker), 2);
        q.cancel(a);
        // O(1) cancel still frees the payload immediately, not at pop time.
        assert_eq!(Rc::strong_count(&marker), 1);
    }

    #[test]
    fn slots_are_reused_instead_of_growing() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            let t = SimTime::from_secs(round + 1);
            let a = q.schedule_at(t, 0u8);
            let b = q.schedule_at(t, 1u8);
            q.cancel(a);
            q.pop();
            let _ = b;
        }
        assert!(q.slots.len() <= 4, "slab grew to {} slots", q.slots.len());
    }

    #[test]
    fn popped_counts_fired_events_only() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.cancel(a);
        while q.pop().is_some() {}
        assert_eq!(q.popped(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    // ---------------- timing-wheel specific coverage ----------------

    /// One second past the wheel's span from time zero: forces the
    /// overflow heap.
    fn far_future() -> SimTime {
        SimTime::from_ticks((1u64 << (WHEEL_BITS + GRAN_BITS)) + TICKS_FAR_PAD)
    }
    const TICKS_FAR_PAD: u64 = 1_000_000;

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q = EventQueue::new();
        let far = far_future();
        q.schedule_at(far, "far");
        q.schedule_at(SimTime::from_secs(1), "near");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "near")));
        assert_eq!(q.pop(), Some((far, "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_ties_keep_scheduling_order() {
        let mut q = EventQueue::new();
        let far = far_future();
        for i in 0..8u32 {
            q.schedule_at(far, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_reaches_into_overflow() {
        let mut q = EventQueue::new();
        let far = far_future();
        let a = q.schedule_at(far, "drop");
        q.schedule_at(far, "keep");
        assert!(q.cancel(a));
        let all: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(all, vec!["keep"]);
    }

    #[test]
    fn event_filed_after_base_jump_still_fires_first() {
        // A peek may position the wheel on a far-future granule before the
        // caller schedules something earlier (but >= now). The earlier
        // event must still fire first.
        let mut q = EventQueue::new();
        let far = far_future();
        q.schedule_at(far, "far");
        assert_eq!(q.peek_time(), Some(far)); // wheel jumps to far's block
        let near = SimTime::from_secs(3);
        q.schedule_at(near, "near");
        assert_eq!(q.pop(), Some((near, "near")));
        assert_eq!(q.pop(), Some((far, "far")));
    }

    #[test]
    fn cross_level_cascades_preserve_order() {
        // Spread events across every wheel level plus overflow, then pop:
        // strict (time, seq) order throughout.
        let mut q = EventQueue::new();
        let mut times: Vec<u64> = Vec::new();
        for level in 0..=LEVELS as u32 {
            // A time whose granule sits `64^level`-ish granules out.
            let ticks = 1u64 << (GRAN_BITS + SLOT_BITS * level);
            times.push(ticks);
            times.push(ticks + 1);
        }
        times.push(5); // sub-granule
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_ticks(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_unstable_by_key(|&(t, i)| (t, i));
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.ticks(), e))).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn clear_drops_overflow_too() {
        let mut q = EventQueue::new();
        q.schedule_at(far_future(), ());
        q.schedule_at(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pending_lists_live_events_in_pop_order() {
        let mut q = EventQueue::new();
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        q.schedule_at(t2, "late");
        let cancelled = q.schedule_at(t1, "gone");
        q.schedule_at(t1, "early");
        q.schedule_at(far_future(), "overflow");
        assert!(q.cancel(cancelled));
        let pending: Vec<(SimTime, &str)> = q.pending().into_iter().map(|(t, e)| (t, *e)).collect();
        assert_eq!(
            pending,
            vec![(t1, "early"), (t2, "late"), (far_future(), "overflow")]
        );
    }

    #[test]
    fn restore_replays_identically_to_the_original() {
        // Drive a queue halfway, snapshot it, and check the restored twin
        // pops the identical remaining stream — including ties and events
        // scheduled after the restore point.
        let mut original = EventQueue::new();
        let times = [5u64, 3, 3, 9, 900_000, 64_000_000, 3, 12, 9];
        for (i, &t) in times.iter().enumerate() {
            original.schedule_at(SimTime::from_ticks(t), i);
        }
        for _ in 0..3 {
            original.pop();
        }
        let snapshot: Vec<(SimTime, usize)> = original
            .pending()
            .into_iter()
            .map(|(t, e)| (t, *e))
            .collect();
        let mut restored = EventQueue::restore(original.now(), original.popped(), snapshot);
        assert_eq!(restored.now(), original.now());
        assert_eq!(restored.popped(), original.popped());
        assert_eq!(restored.len(), original.len());
        // Same-instant insert after the split must tie-break last in both.
        let at = SimTime::from_ticks(9);
        original.schedule_at(at, 99);
        restored.schedule_at(at, 99);
        loop {
            let (a, b) = (original.pop(), restored.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn reference_queue_matches_on_a_smoke_sequence() {
        let mut wheel = EventQueue::new();
        let mut heap = ReferenceEventQueue::new();
        let times = [7u64, 3, 3, 900_000, 64_000_000, 3, 12];
        for (i, &t) in times.iter().enumerate() {
            let at = SimTime::from_ticks(t);
            assert_eq!(wheel.schedule_at(at, i), heap.schedule_at(at, i));
        }
        loop {
            assert_eq!(wheel.peek_time(), heap.peek_time());
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// A tiny deterministic LCG for driving the sharded differential tests
    /// without pulling in the rng module.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn sharded_matches_single_queue_for_any_lane_assignment() {
        // The same schedule/pop interleaving driven through a plain queue
        // and through sharded queues with 1..=5 lanes under a pseudo-random
        // lane assignment: pop order must be bit-identical throughout.
        for lanes in 1..=5usize {
            let mut single = EventQueue::new();
            let mut sharded = ShardedEventQueue::new(lanes);
            let mut state = 0x5eed_0000 + lanes as u64;
            let mut popped_single = Vec::new();
            let mut popped_sharded = Vec::new();
            for round in 0..200u64 {
                // A burst of schedules, many sharing the same instant so the
                // global FIFO tiebreak is exercised across lanes.
                for k in 0..4u64 {
                    let t = single.now().ticks() + lcg(&mut state) % 5_000;
                    let at = SimTime::from_ticks(t);
                    let lane = (lcg(&mut state) as usize) % lanes;
                    let id = round * 10 + k;
                    single.schedule_at(at, id);
                    sharded.schedule_at_on(lane, at, id);
                }
                assert_eq!(single.peek_time(), sharded.peek_time());
                for _ in 0..3 {
                    popped_single.push(single.pop());
                    popped_sharded.push(sharded.pop());
                }
                assert_eq!(popped_single, popped_sharded);
                assert_eq!(single.now(), sharded.now());
                assert_eq!(single.len(), sharded.len());
            }
            // Drain: the tails must agree too.
            loop {
                let (a, b) = (single.pop(), sharded.pop());
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(single.popped(), sharded.popped());
        }
    }

    #[test]
    fn sharded_same_instant_events_fire_in_scheduling_order_across_lanes() {
        let mut q = ShardedEventQueue::new(3);
        let at = SimTime::from_secs(1);
        q.schedule_at_on(2, at, "a");
        q.schedule_at_on(0, at, "b");
        q.schedule_at_on(1, at, "c");
        assert_eq!(q.pop(), Some((at, "a")));
        assert_eq!(q.pop(), Some((at, "b")));
        assert_eq!(q.pop(), Some((at, "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_pending_is_globally_ordered_and_restore_replays() {
        let mut q = ShardedEventQueue::new(4);
        let mut state = 77u64;
        for i in 0..50u32 {
            let at = SimTime::from_ticks(lcg(&mut state) % 10_000);
            q.schedule_at_on((i as usize) % 4, at, i);
        }
        // Consume a prefix, snapshot the rest.
        for _ in 0..20 {
            q.pop();
        }
        let pending: Vec<(SimTime, u32)> = q.pending().iter().map(|&(t, e)| (t, *e)).collect();
        let mut restored =
            ShardedEventQueue::restore(2, q.now(), q.popped(), pending, |e| (*e as usize) % 2);
        assert_eq!(restored.popped(), q.popped());
        loop {
            let (a, b) = (q.pop(), restored.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn sharded_reshard_preserves_replay_order() {
        let mut a = ShardedEventQueue::new(1);
        let mut b = ShardedEventQueue::new(1);
        let mut state = 99u64;
        for i in 0..80u32 {
            let at = SimTime::from_ticks(lcg(&mut state) % 20_000);
            a.schedule_at_on(0, at, i);
            b.schedule_at_on(0, at, i);
        }
        for _ in 0..10 {
            assert_eq!(a.pop(), b.pop());
        }
        // Live reshard of `b` onto 6 lanes mid-run must not perturb replay.
        b.reshard(6, |e| (*e as usize) % 6);
        assert_eq!(b.lane_count(), 6);
        let mut state2 = 123u64;
        for i in 100..140u32 {
            let at_a = a.now().ticks() + lcg(&mut state2) % 9_000;
            a.schedule_at(SimTime::from_ticks(at_a), i);
            b.schedule_at_on((i as usize) % 6, SimTime::from_ticks(at_a), i);
        }
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}
