//! The event queue at the heart of the discrete-event engine.
//!
//! [`EventQueue`] is a priority queue ordered by firing time with a
//! monotonically increasing sequence number as tiebreak, so events scheduled
//! at the same instant fire in scheduling order. That property is what keeps
//! runs deterministic: the simulator never depends on hash ordering or heap
//! internals.
//!
//! Events can be cancelled cheaply by token without touching the heap
//! (lazy deletion): see [`EventQueue::cancel`].

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Identifies a scheduled event so it can be cancelled later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventToken(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap but we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use dftmsn_sim::event::EventQueue;
/// use dftmsn_sim::time::{SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_secs(2), "second");
/// q.schedule_at(SimTime::from_secs(1), "first");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "first"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Sequence numbers currently live in the heap.
    pending: HashSet<u64>,
    /// Sequence numbers cancelled but not yet physically removed.
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation instant (the firing time of the most recently
    /// popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (not cancelled) scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`now`](Self::now)); scheduling
    /// exactly at `now` is allowed and fires after already-queued events at
    /// the same instant.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
        self.pending.insert(seq);
        EventToken(seq)
    }

    /// Schedules `payload` after the relative delay `after`.
    pub fn schedule_after(&mut self, after: SimDuration, payload: E) -> EventToken {
        let at = self.now + after;
        self.schedule_at(at, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancellation is lazy:
    /// the entry stays in the heap and is skipped when reached.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if !self.pending.remove(&token.0) {
            // Already fired, already cancelled, or never issued by us.
            return false;
        }
        self.cancelled.insert(token.0);
        true
    }

    /// Pops the earliest live event, advancing the clock to its instant.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.pending.remove(&ev.seq);
            debug_assert!(ev.at >= self.now, "event time regression");
            self.now = ev.at;
            return Some((ev.at, ev.payload));
        }
        None
    }

    /// The instant of the next live event without popping it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(ev) = self.heap.peek() {
            if self.cancelled.contains(&ev.seq) {
                let seq = ev.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(ev.at);
        }
        None
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 3u32);
        q.schedule_at(SimTime::from_secs(1), 1u32);
        q.schedule_at(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10u32 {
            q.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(4), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "a");
        q.pop();
        q.schedule_after(SimDuration::from_secs(5), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut q = EventQueue::new();
        let keep = q.schedule_at(SimTime::from_secs(1), "keep");
        let drop = q.schedule_at(SimTime::from_secs(2), "drop");
        let _ = keep;
        assert!(q.cancel(drop));
        assert!(!q.cancel(drop), "double-cancel reports false");
        let all: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(all, vec!["keep"]);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancelling_a_fired_event_is_a_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.pop();
        assert!(!q.cancel(a), "token for fired event");
        assert_eq!(q.len(), 1, "len unaffected by stale cancel");
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
