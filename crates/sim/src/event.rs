//! The event queue at the heart of the discrete-event engine.
//!
//! [`EventQueue`] is a priority queue ordered by firing time with a
//! monotonically increasing sequence number as tiebreak, so events scheduled
//! at the same instant fire in scheduling order. That property is what keeps
//! runs deterministic: the simulator never depends on hash ordering or heap
//! internals.
//!
//! # Implementation
//!
//! Payloads live in a generation-tagged slab; the binary heap holds only
//! compact `(time, seq, slot, gen)` entries. Scheduling is a slab write
//! plus a heap push, popping is a heap pop plus a generation check, and
//! cancellation ([`EventQueue::cancel`]) is an O(1) slot invalidation —
//! the heap entry stays behind and is skipped when reached (lazy
//! deletion). No hashing happens anywhere on the hot path; the previous
//! implementation paid two `HashSet` operations per scheduled event.
//!
//! A slot's generation is bumped every time the slot dies (fires, is
//! cancelled, or is cleared), so a stale [`EventToken`] can never touch a
//! recycled slot: tokens embed the generation they were issued under.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies a scheduled event so it can be cancelled later.
///
/// Encodes the slab slot and the slot generation the event was issued
/// under; a token outlives its event harmlessly (cancel just returns
/// `false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventToken(u64);

impl EventToken {
    fn new(slot: u32, gen: u32) -> Self {
        EventToken(u64::from(slot) << 32 | u64::from(gen))
    }

    fn slot(self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn generation(self) -> u32 {
        self.0 as u32
    }
}

/// One slab slot: the payload of a live event, tagged with a reuse
/// generation.
#[derive(Debug)]
struct Slot<E> {
    /// Bumped whenever the slot dies; tokens and heap entries carrying an
    /// older generation are stale.
    gen: u32,
    /// `Some` while the event is live.
    payload: Option<E>,
}

/// Compact heap entry; the payload stays in the slab.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap but we want the earliest event;
        // equal instants fire in scheduling (seq) order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use dftmsn_sim::event::EventQueue;
/// use dftmsn_sim::time::{SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_secs(2), "second");
/// q.schedule_at(SimTime::from_secs(1), "first");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "first"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry>,
    slots: Vec<Slot<E>>,
    /// Slots whose payload has died and may be reused.
    free: Vec<u32>,
    /// Number of live (schedulable, not cancelled) events.
    live: usize,
    /// Total events popped over the queue's lifetime (for throughput
    /// reporting).
    popped: u64,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            popped: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation instant (the firing time of the most recently
    /// popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (not cancelled) scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events popped (fired) over the queue's lifetime.
    #[must_use]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`now`](Self::now)); scheduling
    /// exactly at `now` is allowed and fires after already-queued events at
    /// the same instant.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].payload = Some(payload);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("slab overflow");
                self.slots.push(Slot {
                    gen: 0,
                    payload: Some(payload),
                });
                s
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(HeapEntry { at, seq, slot, gen });
        self.live += 1;
        EventToken::new(slot, gen)
    }

    /// Schedules `payload` after the relative delay `after`.
    pub fn schedule_after(&mut self, after: SimDuration, payload: E) -> EventToken {
        let at = self.now + after;
        self.schedule_at(at, payload)
    }

    /// Cancels a previously scheduled event in O(1).
    ///
    /// Returns `true` if the event was still pending. The payload is
    /// dropped immediately; the heap entry stays behind (lazy deletion)
    /// and is skipped when reached. Tokens for events that already fired,
    /// were already cancelled, or whose slot has since been reused by a
    /// newer generation all return `false`.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let Some(slot) = self.slots.get_mut(token.slot() as usize) else {
            return false;
        };
        if slot.gen != token.generation() || slot.payload.is_none() {
            // Already fired / cancelled / recycled, or never ours.
            return false;
        }
        slot.payload = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(token.slot());
        self.live -= 1;
        true
    }

    /// Frees the slot behind a heap entry and returns its payload (the
    /// entry must be live: generations matched).
    fn retire(&mut self, entry: HeapEntry) -> E {
        let slot = &mut self.slots[entry.slot as usize];
        let payload = slot.payload.take().expect("live slot has a payload");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(entry.slot);
        self.live -= 1;
        payload
    }

    /// Pops the earliest live event, advancing the clock to its instant.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.slots[entry.slot as usize].gen != entry.gen {
                // Cancelled (slot died) or recycled under a newer token.
                continue;
            }
            let payload = self.retire(entry);
            debug_assert!(entry.at >= self.now, "event time regression");
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, payload));
        }
        None
    }

    /// The instant of the next live event without popping it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.slots[entry.slot as usize].gen != entry.gen {
                self.heap.pop();
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Removes every pending event.
    ///
    /// Slots are invalidated, not deallocated, so tokens issued before the
    /// clear can never cancel events scheduled after it.
    pub fn clear(&mut self) {
        self.heap.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.payload.take().is_some() {
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 3u32);
        q.schedule_at(SimTime::from_secs(1), 1u32);
        q.schedule_at(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10u32 {
            q.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ties_fire_in_scheduling_order_across_slot_reuse() {
        // Interleave cancellations so later events land in recycled slots
        // with *lower* slot indices; the tie order must still follow the
        // scheduling sequence, not slab layout.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        let a = q.schedule_at(t, 100u32); // slot 0
        let b = q.schedule_at(t, 101u32); // slot 1
        assert!(q.cancel(a));
        assert!(q.cancel(b));
        for i in 0..6u32 {
            q.schedule_at(t, i); // first two reuse slots 1, 0
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(4), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "a");
        q.pop();
        q.schedule_after(SimDuration::from_secs(5), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut q = EventQueue::new();
        let keep = q.schedule_at(SimTime::from_secs(1), "keep");
        let drop = q.schedule_at(SimTime::from_secs(2), "drop");
        let _ = keep;
        assert!(q.cancel(drop));
        assert!(!q.cancel(drop), "double-cancel reports false");
        let all: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(all, vec!["keep"]);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancelling_a_fired_event_is_a_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.pop();
        assert!(!q.cancel(a), "token for fired event");
        assert_eq!(q.len(), 1, "len unaffected by stale cancel");
    }

    #[test]
    fn stale_token_cannot_cancel_a_recycled_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        assert!(q.cancel(a));
        // "b" reuses a's slot under a newer generation.
        let b = q.schedule_at(SimTime::from_secs(2), "b");
        assert!(!q.cancel(a), "stale token must be rejected across reuse");
        assert_eq!(q.len(), 1);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_secs(2), "b"));
        assert!(!q.cancel(b), "token for fired event after reuse");
    }

    #[test]
    fn token_from_before_clear_cannot_touch_later_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "old");
        q.clear();
        assert!(q.is_empty());
        let b = q.schedule_at(SimTime::from_secs(2), "new");
        assert!(!q.cancel(a), "pre-clear token must be dead");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
    }

    #[test]
    fn cancelled_payloads_are_dropped_eagerly() {
        use std::rc::Rc;
        let marker = Rc::new(());
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), Rc::clone(&marker));
        assert_eq!(Rc::strong_count(&marker), 2);
        q.cancel(a);
        // O(1) cancel still frees the payload immediately, not at pop time.
        assert_eq!(Rc::strong_count(&marker), 1);
    }

    #[test]
    fn slots_are_reused_instead_of_growing() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            let t = SimTime::from_secs(round + 1);
            let a = q.schedule_at(t, 0u8);
            let b = q.schedule_at(t, 1u8);
            q.cancel(a);
            q.pop();
            let _ = b;
        }
        assert!(q.slots.len() <= 4, "slab grew to {} slots", q.slots.len());
    }

    #[test]
    fn popped_counts_fired_events_only() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.cancel(a);
        while q.pop().is_some() {}
        assert_eq!(q.popped(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
