//! Hand-rolled binary snapshot codec for checkpoint files.
//!
//! The checkpoint subsystem serializes the complete live state of a
//! simulation into a versioned, checksummed byte stream. The workspace has
//! no real serialization dependency (the in-tree `serde` is a no-op marker
//! shim), so this module provides the primitives directly: a little-endian
//! [`SnapWriter`]/[`SnapReader`] pair plus an FNV-1a checksum.
//!
//! Two invariants matter for the resume-determinism contract:
//!
//! * **Bit-exact floats.** `f64` values travel as their IEEE-754 bit
//!   patterns (`to_bits`/`from_bits`), so a resumed run re-reads exactly
//!   the value the checkpointed run held — including signed zeros and the
//!   ±∞ sentinels used by empty running statistics.
//! * **Fallible reads.** Every read returns a [`SnapError`] on truncation
//!   or malformed data instead of panicking, so a corrupt checkpoint is
//!   rejected with a diagnostic rather than aborting the process.

use core::fmt;

/// A snapshot decoding failure: truncation, a bad tag, or a value outside
/// its domain. The message names what was being read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError(String);

impl SnapError {
    /// Creates an error with the given description.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        SnapError(msg.into())
    }

    /// The human-readable failure description.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit hash of a byte slice, used as the checkpoint body
/// checksum. Not cryptographic — it detects truncation and bit rot, which
/// is all a local checkpoint file needs.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Appends little-endian primitives to a growing byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a boolean as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes raw bytes with no length prefix (caller tracks framing).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes an `Option` as a presence byte followed by the value.
    pub fn option<T>(&mut self, v: Option<&T>, mut write: impl FnMut(&mut Self, &T)) {
        match v {
            Some(x) => {
                self.bool(true);
                write(self, x);
            }
            None => self.bool(false),
        }
    }

    /// Writes a slice as a length prefix followed by each element.
    pub fn seq<T>(&mut self, xs: &[T], mut write: impl FnMut(&mut Self, &T)) {
        self.usize(xs.len());
        for x in xs {
            write(self, x);
        }
    }
}

/// Reads little-endian primitives from a byte slice, tracking position.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over `buf` starting at offset 0.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::new(format!(
                "truncated snapshot: need {n} bytes for {what}, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` stored as a `u64`, rejecting values that do not fit.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::new(format!("usize value {v} overflows")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a boolean, rejecting bytes other than 0 and 1.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::new(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, SnapError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(SnapError::new(format!(
                "truncated snapshot: string of {len} bytes, {} left",
                self.remaining()
            )));
        }
        let bytes = self.take(len, "string body")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapError::new("string is not valid UTF-8".to_string()))
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n, "raw bytes")
    }

    /// Reads an `Option` written by [`SnapWriter::option`].
    pub fn option<T>(
        &mut self,
        mut read: impl FnMut(&mut Self) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        if self.bool()? {
            Ok(Some(read(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a sequence written by [`SnapWriter::seq`]. The element size
    /// floor (1 byte) bounds a corrupt length prefix before allocating.
    pub fn seq<T>(
        &mut self,
        mut read: impl FnMut(&mut Self) -> Result<T, SnapError>,
    ) -> Result<Vec<T>, SnapError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(SnapError::new(format!(
                "truncated snapshot: sequence of {len} elements, {} bytes left",
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(read(self)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.usize(42);
        w.f64(-0.0);
        w.f64(f64::INFINITY);
        w.f64(1.5e-300);
        w.bool(true);
        w.bool(false);
        w.string("héllo");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert_eq!(r.f64().unwrap(), 1.5e-300);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.string().unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let mut w = SnapWriter::new();
        w.f64(weird);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.f64().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn option_and_seq_round_trip() {
        let mut w = SnapWriter::new();
        w.option(Some(&3u64), |w, &v| w.u64(v));
        w.option(None::<&u64>, |w, &v| w.u64(v));
        w.seq(&[1u64, 2, 3], |w, &v| w.u64(v));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.option(|r| r.u64()).unwrap(), Some(3));
        assert_eq!(r.option(|r| r.u64()).unwrap(), None);
        assert_eq!(r.seq(|r| r.u64()).unwrap(), vec![1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let mut bytes = w.into_bytes();
        bytes.truncate(5);
        let mut r = SnapReader::new(&bytes);
        let err = r.u64().unwrap_err();
        assert!(err.message().contains("truncated"), "{err}");
    }

    #[test]
    fn corrupt_length_prefixes_are_rejected() {
        let mut w = SnapWriter::new();
        w.usize(usize::MAX / 2); // absurd sequence length
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.seq(|r| r.u8()).is_err());

        let mut w = SnapWriter::new();
        w.usize(1_000_000); // string claims more bytes than exist
        w.raw(b"short");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.string().is_err());
    }

    #[test]
    fn invalid_bool_byte_is_rejected() {
        let mut r = SnapReader::new(&[2]);
        assert!(r.bool().is_err());
    }

    #[test]
    fn non_utf8_string_is_rejected() {
        let mut w = SnapWriter::new();
        w.usize(2);
        w.raw(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.string().is_err());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let mut w = SnapWriter::new();
        for i in 0..64u64 {
            w.u64(i);
        }
        let bytes = w.into_bytes();
        let sum = fnv1a64(&bytes);
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 1;
            assert_ne!(fnv1a64(&flipped), sum, "flip at byte {i} undetected");
        }
    }
}
