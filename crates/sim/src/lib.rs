//! # dftmsn-sim — deterministic discrete-event simulation substrate
//!
//! This crate is the foundation of the DFT-MSN reproduction: a small,
//! dependency-free discrete-event simulation (DES) kernel providing
//!
//! * [`time`] — integer-microsecond simulation clock types
//!   ([`SimTime`], [`SimDuration`]);
//! * [`event`] — a deterministic future-event list
//!   ([`EventQueue`]) with O(1) cancellation;
//! * [`rng`] — a seedable, forkable xoshiro256++ generator
//!   ([`SimRng`]) so runs are bit-reproducible;
//! * [`snap`] — the little-endian snapshot codec
//!   ([`SnapWriter`]/[`SnapReader`]) backing checkpoint files.
//!
//! The simulator built on top (see the `dftmsn-core` crate) is
//! single-threaded by design: determinism is the property the experiment
//! harness depends on, and the workloads parallelize across independent
//! runs instead.
//!
//! # Examples
//!
//! A complete miniature simulation — a ping-pong of two events:
//!
//! ```
//! use dftmsn_sim::event::EventQueue;
//! use dftmsn_sim::time::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::ZERO + SimDuration::from_secs(1), Ev::Ping);
//! let mut log = Vec::new();
//! while let Some((now, ev)) = q.pop() {
//!     match ev {
//!         Ev::Ping if now < SimTime::from_secs(4) => {
//!             log.push("ping");
//!             q.schedule_after(SimDuration::from_secs(1), Ev::Pong);
//!         }
//!         Ev::Pong => {
//!             log.push("pong");
//!             q.schedule_after(SimDuration::from_secs(1), Ev::Ping);
//!         }
//!         Ev::Ping => break,
//!     }
//! }
//! assert_eq!(log, vec!["ping", "pong", "ping", "pong"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod rng;
pub mod snap;
pub mod time;

pub use event::{EventQueue, EventToken};
pub use rng::SimRng;
pub use snap::{fnv1a64, SnapError, SnapReader, SnapWriter};
pub use time::{SimDuration, SimTime};
