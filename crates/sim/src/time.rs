//! Simulation time.
//!
//! Simulation time is a monotonically increasing, discrete quantity measured
//! in integer **microseconds** since the start of the run. Using integers
//! (rather than `f64` seconds) keeps event ordering exact and runs
//! bit-reproducible across platforms.
//!
//! Two newtypes keep instants and spans apart at the type level
//! ([`SimTime`] and [`SimDuration`]); mixing them up is a compile error.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Number of microsecond ticks per simulated second.
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulation clock, in microseconds since time zero.
///
/// # Examples
///
/// ```
/// use dftmsn_sim::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(3);
/// assert_eq!(t.as_secs_f64(), 3.0);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
///
/// # Examples
///
/// ```
/// use dftmsn_sim::time::SimDuration;
///
/// let d = SimDuration::from_millis(5) * 3;
/// assert_eq!(d, SimDuration::from_micros(15_000));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulation time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microsecond ticks.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Creates an instant `secs` seconds after time zero.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SEC)
    }

    /// Raw microsecond ticks since time zero.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Seconds since time zero, as a float (lossy above ~2^53 µs).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is after `self`, so the
    /// result is always well formed even with out-of-order bookkeeping.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`] instead of wrapping.
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw microsecond ticks.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Creates a duration of `secs` whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SEC)
    }

    /// Creates a duration of `ms` whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration of `us` microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let ticks = (secs * TICKS_PER_SEC as f64).round();
        if ticks >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ticks as u64)
        }
    }

    /// Raw microsecond ticks.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The span as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True when the span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Element-wise maximum of two spans.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Element-wise minimum of two spans.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Clamps the span into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
        SimDuration(self.0.clamp(lo.0, hi.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

/// The conservative-lookahead epoch clock of the sharded world engine.
///
/// Spatial shards can run decoupled for as long as no node can move far
/// enough to change which shard's slice of the world it interacts with.
/// With every speed bounded by `v_max`, two nodes separated by more than
/// `band_m` metres need at least `band_m / (2 · v_max)` seconds to close
/// that gap — the classic PDES lookahead bound, derived from the same
/// worst-case-drift argument lazy mobility and the contact cache already
/// use. The epoch clock quantizes a run into barriers that many seconds
/// apart: shard-affinity structures (node→shard assignment, the medium's
/// per-shard mirrors) are refreshed only at barriers, and the boundary
/// band is sized so any staleness in between is absorbed.
///
/// # Examples
///
/// ```
/// use dftmsn_sim::time::{EpochClock, SimTime};
///
/// // A 10 m boundary band at v_max = 5 m/s buys a 1 s epoch.
/// let clock = EpochClock::derive(10.0, 5.0);
/// assert!((clock.lookahead().as_secs_f64() - 1.0).abs() < 1e-9);
/// let t = SimTime::from_ticks(2_500_000); // 2.5 s
/// assert_eq!(clock.next_barrier(t), SimTime::from_secs(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochClock {
    lookahead: SimDuration,
}

impl EpochClock {
    /// Shortest epoch worth the barrier overhead. A barrier costs an O(n)
    /// affinity sweep plus a medium mirror rebuild; at the old 1 ms floor a
    /// degenerate band (zero width, or a pathological `v_max`) pinned the
    /// clock there and a run took a thousand barriers per simulated second
    /// — pure thrash, since a band too narrow to buy lookahead gains
    /// nothing from refreshing faster. 25 ms is one paper-default mobility
    /// tick: affinity can never go staler than a tick's worth of motion
    /// between barriers, and the O(n) sweep amortizes over at least a
    /// tick's worth of events.
    pub const MIN_LOOKAHEAD: SimDuration = SimDuration::from_millis(25);
    /// Longest epoch: refresh at least every 30 s so load tracking and
    /// telemetry stay current even in near-static worlds.
    pub const MAX_LOOKAHEAD: SimDuration = SimDuration::from_secs(30);

    /// Derives the epoch from a boundary-band width (metres) and a speed
    /// bound (m/s): `lookahead = band_m / (2 · v_max)`, clamped to
    /// `[1 ms, 30 s]`. A non-positive speed bound means nobody moves, so
    /// the epoch pins to the maximum.
    #[must_use]
    pub fn derive(band_m: f64, v_max: f64) -> Self {
        let lookahead = if v_max <= 0.0 {
            Self::MAX_LOOKAHEAD
        } else {
            let secs = (band_m / (2.0 * v_max)).max(0.0);
            SimDuration::from_secs_f64(secs)
                .max(Self::MIN_LOOKAHEAD)
                .min(Self::MAX_LOOKAHEAD)
        };
        EpochClock { lookahead }
    }

    /// The epoch length: how long shard-local state stays provably fresh.
    #[must_use]
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// The first barrier instant strictly after `now`, on the epoch grid
    /// anchored at time zero.
    #[must_use]
    pub fn next_barrier(&self, now: SimTime) -> SimTime {
        let step = self.lookahead.ticks().max(1);
        let k = now.ticks() / step + 1;
        SimTime::from_ticks(k * step)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_clock_derives_the_lookahead_bound() {
        // band / (2 v_max): 20 m at 5 m/s → 2 s.
        let c = EpochClock::derive(20.0, 5.0);
        assert_eq!(c.lookahead(), SimDuration::from_secs(2));
        // Degenerate inputs clamp instead of exploding.
        assert_eq!(
            EpochClock::derive(0.0, 5.0).lookahead(),
            EpochClock::MIN_LOOKAHEAD
        );
        assert_eq!(
            EpochClock::derive(10.0, 0.0).lookahead(),
            EpochClock::MAX_LOOKAHEAD
        );
        assert_eq!(
            EpochClock::derive(1e12, 0.001).lookahead(),
            EpochClock::MAX_LOOKAHEAD
        );
    }

    #[test]
    fn epoch_clock_paper_default_is_one_second() {
        // The paper's parameter set: 10 m radio range, 5 m/s speed bound.
        // The engine derives the band from the range, so the band IS the
        // range here and the epoch lands on 1 s — pinned so a parameter
        // or formula drift shows up as a failed constant, not a silent
        // barrier-cadence change.
        let c = EpochClock::derive(10.0, 5.0);
        assert_eq!(c.lookahead(), SimDuration::from_secs(1));
    }

    #[test]
    fn epoch_clock_static_fleet_pins_to_the_maximum() {
        // A static fleet (v_max = 0, and the negative-guard path) cannot
        // invalidate shard affinity at all; the clock must sit at the max
        // rather than divide by zero or thrash.
        for v in [0.0, -1.0] {
            assert_eq!(
                EpochClock::derive(10.0, v).lookahead(),
                EpochClock::MAX_LOOKAHEAD
            );
        }
    }

    #[test]
    fn epoch_clock_floor_blocks_barrier_thrash() {
        // Tiny bands clamp to the floor, and the floor is wide enough
        // that a worst-case run takes at most 40 barriers per simulated
        // second — not a thousand, as the old 1 ms floor allowed.
        let c = EpochClock::derive(1e-9, 100.0);
        assert_eq!(c.lookahead(), EpochClock::MIN_LOOKAHEAD);
        assert!(c.lookahead() >= SimDuration::from_millis(25));
        // The barrier grid at the floor still advances strictly.
        let mut t = SimTime::ZERO;
        for _ in 0..3 {
            let next = c.next_barrier(t);
            assert!(next > t);
            t = next;
        }
        assert_eq!(t, SimTime::from_ticks(75_000)); // 75 ms at µs ticks
    }

    #[test]
    fn epoch_barriers_land_on_the_grid_strictly_ahead() {
        let c = EpochClock::derive(10.0, 5.0); // 1 s epochs
        assert_eq!(c.next_barrier(SimTime::ZERO), SimTime::from_secs(1));
        assert_eq!(c.next_barrier(SimTime::from_secs(1)), SimTime::from_secs(2));
        assert_eq!(
            c.next_barrier(SimTime::from_ticks(1_999_999)),
            SimTime::from_secs(2)
        );
    }

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(1500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_secs_f64(), 11.5);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(
            SimDuration::from_secs_f64(0.005),
            SimDuration::from_millis(5)
        );
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn clamp_and_minmax() {
        let d = SimDuration::from_secs(5);
        assert_eq!(
            d.clamp(SimDuration::from_secs(1), SimDuration::from_secs(3)),
            SimDuration::from_secs(3)
        );
        assert_eq!(d.max(SimDuration::from_secs(7)), SimDuration::from_secs(7));
        assert_eq!(d.min(SimDuration::from_secs(7)), d);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn strict_sub_panics_on_underflow() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{}", SimDuration::from_millis(5)).is_empty());
    }
}
