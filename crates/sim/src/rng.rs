//! Deterministic pseudo-random number generation.
//!
//! Every stochastic decision in the simulator flows through [`SimRng`], a
//! self-contained xoshiro256++ generator seeded through SplitMix64. Two runs
//! with the same seed produce bit-identical traces on every platform, which
//! is what makes the experiment harness and the failure-injection tests
//! reproducible.
//!
//! The generator supports cheap [`fork`](SimRng::fork)ing so each simulated
//! node can own an independent stream derived from the run seed; adding or
//! removing one node does not perturb the streams of the others.

use serde::{Deserialize, Serialize};

/// SplitMix64 step, used for seeding and stream derivation.
///
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use dftmsn_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The full 256-bit state is expanded from the seed with SplitMix64, so
    /// nearby seeds still yield statistically independent streams.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derives an independent child stream identified by `stream`.
    ///
    /// Forking is deterministic: the same parent seed and stream id always
    /// produce the same child, regardless of how much the parent has been
    /// used (the fork mixes the parent's *current* state with the id, so
    /// fork all children before drawing from the parent when strict
    /// insertion-order independence matters).
    #[must_use]
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        SimRng { s }
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's nearly-divisionless rejection method, so the result is
    /// unbiased for every `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range_u64 called with n = 0");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform integer in the **inclusive** range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range [{lo}, {hi}]");
        if lo == hi {
            return lo;
        }
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_range_u64(span + 1)
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite(), "non-finite range bound");
        assert!(lo <= hi, "inverted range [{lo}, {hi}]");
        lo + self.next_f64() * (hi - lo)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// An exponentially distributed value with the given `mean` (> 0).
    ///
    /// Used for Poisson-process inter-arrival times.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not a positive finite number.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        // Map u in (0, 1]: avoid ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// The raw 256-bit generator state, for checkpointing. Restoring it
    /// with [`SimRng::from_state`] resumes the stream bit-for-bit.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Reconstructs a generator from a previously captured state.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which xoshiro256++ cannot leave (and
    /// which no live generator can reach — a checkpoint holding it is
    /// corrupt).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "all-zero xoshiro state is invalid");
        SimRng { s }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range_u64(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range_u64(xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let root = SimRng::seed_from(99);
        let mut a1 = root.fork(1);
        let mut a2 = root.fork(1);
        let mut b = root.fork(2);
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..10_000 {
            let v = rng.gen_range_inclusive(3, 9);
            assert!((3..=9).contains(&v));
            let f = rng.gen_range_f64(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SimRng::seed_from(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range_u64(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow ±5%.
            assert!((9_500..=10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn exp_mean_converges() {
        let mut rng = SimRng::seed_from(6);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(120.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 120.0).abs() < 2.0, "sample mean {mean}");
    }

    #[test]
    fn bool_probability_converges() {
        let mut rng = SimRng::seed_from(8);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.2)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.2).abs() < 0.01, "empirical p {p}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(9);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::seed_from(10);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    #[should_panic(expected = "n = 0")]
    fn zero_range_panics() {
        SimRng::seed_from(1).gen_range_u64(0);
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = SimRng::seed_from(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SimRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn all_zero_state_is_rejected() {
        let _ = SimRng::from_state([0; 4]);
    }
}
