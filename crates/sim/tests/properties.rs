//! Property-based tests of the DES kernel: the event queue behaves like a
//! stable priority queue, cancellation is exact, and the RNG's
//! distributions honour their contracts.

use dftmsn_sim::event::{EventQueue, ReferenceEventQueue};
use dftmsn_sim::rng::SimRng;
use dftmsn_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Popping replays events in (time, insertion) order — exactly a
    /// stable sort of the schedule.
    #[test]
    fn queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..10_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_ticks(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        let popped: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, i)| (t.ticks(), i))).collect();
        prop_assert_eq!(popped, expected);
    }

    /// Cancelled events never fire; everything else does, and `len`
    /// agrees at every step.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule_at(SimTime::from_ticks(t), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, token) in tokens.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*token));
                prop_assert!(!q.cancel(*token), "double cancel must fail");
                cancelled.insert(i);
            }
        }
        prop_assert_eq!(q.len(), times.len() - cancelled.len());
        let fired: std::collections::HashSet<usize> =
            std::iter::from_fn(|| q.pop().map(|(_, i)| i)).collect();
        prop_assert_eq!(fired.len(), times.len() - cancelled.len());
        prop_assert!(fired.is_disjoint(&cancelled));
    }

    /// `schedule_after` always lands relative to the current clock.
    #[test]
    fn relative_scheduling_tracks_now(delays in proptest::collection::vec(1u64..1_000, 1..50)) {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_ticks(delays[0]), 0usize);
        let mut expected = delays[0];
        let (t, _) = q.pop().unwrap();
        prop_assert_eq!(t.ticks(), expected);
        for (i, &d) in delays.iter().enumerate().skip(1) {
            q.schedule_after(SimDuration::from_ticks(d), i);
            expected += d;
            let (t, _) = q.pop().unwrap();
            prop_assert_eq!(t.ticks(), expected);
        }
    }

    /// Forked streams are reproducible and (statistically) independent of
    /// sibling order.
    #[test]
    fn forks_depend_only_on_stream_id(seed in any::<u64>(), stream in 0u64..1_000) {
        let root = SimRng::seed_from(seed);
        let mut a = root.fork(stream);
        let mut b = root.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// gen_range_inclusive covers its bounds and nothing else.
    #[test]
    fn inclusive_range_is_tight(seed in any::<u64>(), lo in 0u64..100, span in 0u64..20) {
        let hi = lo + span;
        let mut rng = SimRng::seed_from(seed);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let v = rng.gen_range_inclusive(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
            seen_lo |= v == lo;
            seen_hi |= v == hi;
        }
        if span < 10 {
            prop_assert!(seen_lo && seen_hi, "bounds never drawn over 2000 samples");
        }
    }

    /// Exponential draws are positive and have a plausible mean.
    #[test]
    fn exponential_mean_is_plausible(seed in any::<u64>(), mean in 1.0f64..1_000.0) {
        let mut rng = SimRng::seed_from(seed);
        let n = 4_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen_exp(mean);
            prop_assert!(x >= 0.0);
            sum += x;
        }
        let sample_mean = sum / n as f64;
        // Standard error is mean/sqrt(n); allow 6 sigma.
        prop_assert!(
            (sample_mean - mean).abs() < 6.0 * mean / (n as f64).sqrt(),
            "sample mean {sample_mean} vs {mean}"
        );
    }

    /// Differential check of the timing wheel against the reference heap
    /// queue: under randomized schedule/cancel/pop/peek workloads — with
    /// delays spanning everything from sub-granule to beyond the wheel
    /// span (overflow heap) — both queues must issue identical tokens,
    /// report identical cancel outcomes, and pop identical
    /// `(time, payload)` sequences.
    #[test]
    fn wheel_matches_reference_heap(
        ops in proptest::collection::vec(
            (0u8..100, any::<u64>(), 0usize..1024),
            0..400,
        ),
    ) {
        let mut wheel: EventQueue<usize> = EventQueue::new();
        let mut heap: ReferenceEventQueue<usize> = ReferenceEventQueue::new();
        let mut tokens = Vec::new();
        for (i, &(kind, raw, pick)) in ops.iter().enumerate() {
            if kind < 45 {
                // Schedule with a horizon drawn from one of four decades:
                // same granule, low wheel levels, high wheel levels, and
                // past the wheel span (forces the overflow heap).
                let delay = match raw % 4 {
                    0 => raw % 1_000,
                    1 => raw % 10_000_000,
                    2 => raw % 500_000_000_000,
                    _ => raw % 200_000_000_000_000,
                };
                let d = SimDuration::from_ticks(delay);
                let (a, b) = (wheel.schedule_after(d, i), heap.schedule_after(d, i));
                prop_assert_eq!(a, b, "token divergence at op {}", i);
                tokens.push(a);
            } else if kind < 65 {
                if tokens.is_empty() {
                    continue;
                }
                let t = tokens[pick % tokens.len()];
                prop_assert_eq!(wheel.cancel(t), heap.cancel(t), "cancel divergence at op {}", i);
            } else if kind < 90 {
                prop_assert_eq!(wheel.pop(), heap.pop(), "pop divergence at op {}", i);
            } else {
                prop_assert_eq!(wheel.peek_time(), heap.peek_time(), "peek divergence at op {}", i);
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.now(), heap.now());
        }
        // Drain both to the end.
        loop {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b, "drain divergence");
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.popped(), heap.popped());
    }

    /// Time arithmetic round-trips.
    #[test]
    fn time_arithmetic_roundtrips(base in 0u64..1_000_000, delta in 0u64..1_000_000) {
        let t = SimTime::from_ticks(base);
        let d = SimDuration::from_ticks(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d).saturating_since(t), d);
        prop_assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }
}
