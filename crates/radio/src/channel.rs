//! Channel parameters and frame airtime.
//!
//! The paper's setup uses a 10 kbps shared channel, 1000-bit data messages,
//! 50-bit control packets and a 10 m maximum transmission range.

use dftmsn_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Static parameters of the shared wireless channel.
///
/// # Examples
///
/// ```
/// use dftmsn_radio::channel::ChannelParams;
/// use dftmsn_sim::time::SimDuration;
///
/// let ch = ChannelParams::paper_default();
/// assert_eq!(ch.airtime(1000), SimDuration::from_millis(100));
/// assert_eq!(ch.airtime(50), SimDuration::from_millis(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelParams {
    /// Channel bit rate (bits per second).
    pub bandwidth_bps: u64,
    /// Maximum transmission range (metres); reception beyond it is
    /// impossible (unit-disk model).
    pub range_m: f64,
}

impl ChannelParams {
    /// The paper's default channel: 10 kbps, 10 m range.
    #[must_use]
    pub fn paper_default() -> Self {
        ChannelParams {
            bandwidth_bps: 10_000,
            range_m: 10.0,
        }
    }

    /// Time on air for a frame of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if the channel bandwidth is zero.
    #[must_use]
    pub fn airtime(&self, bits: u64) -> SimDuration {
        assert!(self.bandwidth_bps > 0, "zero-bandwidth channel");
        // Round up to the next microsecond so a frame never takes zero time.
        let micros = (bits as u128 * 1_000_000u128).div_ceil(self.bandwidth_bps as u128);
        SimDuration::from_micros(micros as u64)
    }
}

impl Default for ChannelParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_airtime_values() {
        let ch = ChannelParams::paper_default();
        assert_eq!(ch.airtime(1000), SimDuration::from_millis(100));
        assert_eq!(ch.airtime(50), SimDuration::from_millis(5));
    }

    #[test]
    fn airtime_rounds_up() {
        let ch = ChannelParams {
            bandwidth_bps: 3,
            range_m: 10.0,
        };
        // 1 bit at 3 bps = 333333.3 µs → 333334 µs.
        assert_eq!(ch.airtime(1), SimDuration::from_micros(333_334));
    }

    #[test]
    fn zero_bits_take_zero_time() {
        let ch = ChannelParams::paper_default();
        assert_eq!(ch.airtime(0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn zero_bandwidth_panics() {
        let ch = ChannelParams {
            bandwidth_bps: 0,
            range_m: 10.0,
        };
        let _ = ch.airtime(10);
    }
}
