//! Node identity.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifies a node (sensor or sink) in the network.
///
/// `NodeId`s are dense indices assigned at network construction, so they
/// double as positions into per-node arrays throughout the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The dense index backing this id.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let id = NodeId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(3), NodeId(3));
    }
}
