//! Radio power states and energy accounting.
//!
//! The paper models four transceiver states — transmitting, receiving,
//! (idle) listening and sleeping — with the Berkeley-mote power figures:
//! 24.75 mW transmit, 13.5 mW receive, idle listening equal to receive,
//! 15 µW sleep, and a radio on/off switch cost of four times the listening
//! power (Sec. 5 and Eq. 7).

use dftmsn_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The four transceiver power states (Sec. 4.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioState {
    /// Radio powered down.
    Sleep,
    /// Radio on, listening to an idle channel.
    Idle,
    /// Actively receiving a frame.
    Rx,
    /// Actively transmitting a frame.
    Tx,
}

impl RadioState {
    /// All states, for iteration in reports.
    pub const ALL: [RadioState; 4] = [
        RadioState::Sleep,
        RadioState::Idle,
        RadioState::Rx,
        RadioState::Tx,
    ];

    /// True when the radio is powered (any state but [`RadioState::Sleep`]).
    #[must_use]
    pub fn is_awake(self) -> bool {
        !matches!(self, RadioState::Sleep)
    }

    /// Dense index for per-state arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            RadioState::Sleep => 0,
            RadioState::Idle => 1,
            RadioState::Rx => 2,
            RadioState::Tx => 3,
        }
    }
}

/// Power draw per radio state plus the energy cost of waking/sleeping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Transmit power (W).
    pub p_tx_w: f64,
    /// Receive power (W).
    pub p_rx_w: f64,
    /// Idle-listening power (W); equals receive power for short-range
    /// radios (Sec. 4.1).
    pub p_idle_w: f64,
    /// Sleep power (W).
    pub p_sleep_w: f64,
    /// Energy consumed by one radio on/off transition (J).
    ///
    /// The paper states the transition draws four times the listening
    /// power; we integrate that over a 2 ms switch time (see DESIGN.md).
    pub e_switch_j: f64,
}

impl EnergyModel {
    /// The Berkeley-mote model used in the paper's evaluation.
    #[must_use]
    pub fn berkeley_mote() -> Self {
        let p_idle_w = 13.5e-3;
        EnergyModel {
            p_tx_w: 24.75e-3,
            p_rx_w: 13.5e-3,
            p_idle_w,
            p_sleep_w: 15e-6,
            e_switch_j: 4.0 * p_idle_w * 0.002,
        }
    }

    /// Power draw (W) in the given state.
    #[must_use]
    pub fn power_w(&self, state: RadioState) -> f64 {
        match state {
            RadioState::Sleep => self.p_sleep_w,
            RadioState::Idle => self.p_idle_w,
            RadioState::Rx => self.p_rx_w,
            RadioState::Tx => self.p_tx_w,
        }
    }

    /// The minimum worthwhile sleep period of Eq. 7:
    /// `T_min ≥ 2·E_switch / (P_idle − P_sleep)`.
    ///
    /// Sleeping shorter than this costs more in switch energy than it saves
    /// in idle power.
    #[must_use]
    pub fn min_sleep(&self) -> SimDuration {
        let denom = self.p_idle_w - self.p_sleep_w;
        if denom <= 0.0 {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64(2.0 * self.e_switch_j / denom)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::berkeley_mote()
    }
}

/// Integrates a node's energy use over time as its radio changes state.
///
/// # Examples
///
/// ```
/// use dftmsn_radio::energy::{EnergyMeter, EnergyModel, RadioState};
/// use dftmsn_sim::time::SimTime;
///
/// let model = EnergyModel::berkeley_mote();
/// let mut meter = EnergyMeter::new(RadioState::Idle);
/// meter.set_state(SimTime::from_secs(10), RadioState::Sleep, &model);
/// let total = meter.total_energy_j(SimTime::from_secs(10), &model);
/// // Ten seconds of idle listening plus one switch.
/// assert!((total - (0.0135 * 10.0 + model.e_switch_j)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    state: RadioState,
    since: SimTime,
    per_state_j: [f64; 4],
    switch_j: f64,
    switches: u64,
}

impl EnergyMeter {
    /// Creates a meter with the radio in `initial` state at time zero.
    #[must_use]
    pub fn new(initial: RadioState) -> Self {
        EnergyMeter {
            state: initial,
            since: SimTime::ZERO,
            per_state_j: [0.0; 4],
            switch_j: 0.0,
            switches: 0,
        }
    }

    /// The current radio state.
    #[must_use]
    pub fn state(&self) -> RadioState {
        self.state
    }

    /// Moves the radio to `next` at instant `now`, charging the elapsed
    /// interval at the old state's power and, on a sleep/wake boundary, the
    /// switch energy.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last recorded transition.
    pub fn set_state(&mut self, now: SimTime, next: RadioState, model: &EnergyModel) {
        assert!(now >= self.since, "energy meter time went backwards");
        let dt = (now - self.since).as_secs_f64();
        self.per_state_j[self.state.index()] += dt * model.power_w(self.state);
        if self.state.is_awake() != next.is_awake() {
            self.switch_j += model.e_switch_j;
            self.switches += 1;
        }
        self.state = next;
        self.since = now;
    }

    /// Energy (J) accumulated in `state` so far, excluding the currently
    /// open interval.
    #[must_use]
    pub fn energy_in_state_j(&self, state: RadioState) -> f64 {
        self.per_state_j[state.index()]
    }

    /// Number of sleep/wake transitions so far.
    #[must_use]
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    /// Total energy (J) consumed up to `now`, including the open interval
    /// and all switch costs.
    #[must_use]
    pub fn total_energy_j(&self, now: SimTime, model: &EnergyModel) -> f64 {
        let open = now.saturating_since(self.since).as_secs_f64() * model.power_w(self.state);
        self.per_state_j.iter().sum::<f64>() + self.switch_j + open
    }

    /// The full meter state `(state, since, per_state_j, switch_j,
    /// switches)`, for checkpointing. Energies must round-trip bit-exactly
    /// (serialize via `to_bits`).
    #[must_use]
    pub fn raw_parts(&self) -> (RadioState, SimTime, [f64; 4], f64, u64) {
        (
            self.state,
            self.since,
            self.per_state_j,
            self.switch_j,
            self.switches,
        )
    }

    /// Reconstructs a meter from [`raw_parts`](Self::raw_parts) output.
    #[must_use]
    pub fn from_raw_parts(
        state: RadioState,
        since: SimTime,
        per_state_j: [f64; 4],
        switch_j: f64,
        switches: u64,
    ) -> Self {
        EnergyMeter {
            state,
            since,
            per_state_j,
            switch_j,
            switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mote_figures_match_paper() {
        let m = EnergyModel::berkeley_mote();
        assert_eq!(m.p_tx_w, 24.75e-3);
        assert_eq!(m.p_rx_w, 13.5e-3);
        assert_eq!(m.p_idle_w, m.p_rx_w, "idle listening costs as much as rx");
        assert_eq!(m.p_sleep_w, 15e-6);
        assert!((m.e_switch_j - 1.08e-4).abs() < 1e-12);
    }

    #[test]
    fn eq7_min_sleep_is_positive_and_small() {
        let m = EnergyModel::berkeley_mote();
        let t = m.min_sleep().as_secs_f64();
        // 2 * 1.08e-4 / (0.0135 - 1.5e-5) ≈ 16 ms.
        assert!((t - 0.016018).abs() < 1e-4, "got {t}");
    }

    #[test]
    fn meter_integrates_state_time() {
        let m = EnergyModel::berkeley_mote();
        let mut meter = EnergyMeter::new(RadioState::Idle);
        meter.set_state(SimTime::from_secs(2), RadioState::Tx, &m); // 2 s idle
        meter.set_state(SimTime::from_secs(3), RadioState::Idle, &m); // 1 s tx
        assert!((meter.energy_in_state_j(RadioState::Idle) - 2.0 * m.p_idle_w).abs() < 1e-12);
        assert!((meter.energy_in_state_j(RadioState::Tx) - m.p_tx_w).abs() < 1e-12);
        assert_eq!(meter.switch_count(), 0, "idle<->tx is not a power switch");
    }

    #[test]
    fn switch_energy_charged_on_sleep_boundary() {
        let m = EnergyModel::berkeley_mote();
        let mut meter = EnergyMeter::new(RadioState::Idle);
        meter.set_state(SimTime::from_secs(1), RadioState::Sleep, &m);
        meter.set_state(SimTime::from_secs(2), RadioState::Idle, &m);
        assert_eq!(meter.switch_count(), 2);
        let expected = m.p_idle_w + m.p_sleep_w + 2.0 * m.e_switch_j;
        assert!((meter.total_energy_j(SimTime::from_secs(2), &m) - expected).abs() < 1e-12);
    }

    #[test]
    fn total_includes_open_interval() {
        let m = EnergyModel::berkeley_mote();
        let meter = EnergyMeter::new(RadioState::Idle);
        let total = meter.total_energy_j(SimTime::from_secs(100), &m);
        assert!((total - 100.0 * m.p_idle_w).abs() < 1e-12);
    }

    #[test]
    fn sleeping_beats_idling_beyond_min_sleep() {
        // Sanity-check the Eq. 7 economics: sleeping for 2×T_min costs less
        // than idling for the same period, but sleeping for T_min/4 costs
        // more (switches dominate).
        let m = EnergyModel::berkeley_mote();
        let sleep_cost = |secs: f64| 2.0 * m.e_switch_j + secs * m.p_sleep_w;
        let idle_cost = |secs: f64| secs * m.p_idle_w;
        let tmin = m.min_sleep().as_secs_f64();
        assert!(sleep_cost(2.0 * tmin) < idle_cost(2.0 * tmin));
        assert!(sleep_cost(tmin / 4.0) > idle_cost(tmin / 4.0));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn meter_rejects_time_regression() {
        let m = EnergyModel::berkeley_mote();
        let mut meter = EnergyMeter::new(RadioState::Idle);
        meter.set_state(SimTime::from_secs(5), RadioState::Tx, &m);
        meter.set_state(SimTime::from_secs(4), RadioState::Idle, &m);
    }
}
