//! # dftmsn-radio — PHY/radio substrate for the DFT-MSN reproduction
//!
//! Everything between the antenna and the MAC:
//!
//! * [`ids`] — dense node identifiers;
//! * [`channel`] — bit rate, transmission range, frame airtime;
//! * [`medium`] — the shared half-duplex broadcast channel with unit-disk
//!   propagation and collision-on-overlap reception, generic over the MAC
//!   payload;
//! * [`energy`] — the four radio power states and per-node energy metering
//!   with the Berkeley-mote figures used in the paper's evaluation.
//!
//! # Examples
//!
//! ```
//! use dftmsn_radio::channel::ChannelParams;
//! use dftmsn_radio::energy::{EnergyMeter, EnergyModel, RadioState};
//!
//! let ch = ChannelParams::paper_default();
//! let data_airtime = ch.airtime(1000);
//! assert_eq!(data_airtime.as_secs_f64(), 0.1);
//!
//! let model = EnergyModel::berkeley_mote();
//! assert!(model.p_tx_w > model.p_rx_w);
//! assert!(model.min_sleep().as_secs_f64() < 0.1);
//! # let _ = EnergyMeter::new(RadioState::Idle);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod energy;
pub mod ids;
pub mod medium;

pub use channel::ChannelParams;
pub use energy::{EnergyMeter, EnergyModel, RadioState};
pub use ids::NodeId;
pub use medium::{ActiveTxState, Frame, Medium, MediumCounters, MediumState, TxHandle, TxOutcome};
