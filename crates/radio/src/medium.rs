//! The shared wireless medium.
//!
//! [`Medium`] models a single half-duplex broadcast channel with unit-disk
//! propagation and collision-on-overlap reception:
//!
//! * a frame is *audible* at every node within range of the transmitter at
//!   the moment transmission starts (node speeds are ≤ a few m/s and frames
//!   last ≤ 100 ms, so positions are frozen per frame);
//! * a node *begins receiving* a frame only if it is listening (awake and
//!   not transmitting) when the frame starts — there is no mid-frame
//!   synchronization;
//! * if a second audible frame overlaps an ongoing reception, **both** are
//!   corrupted at that receiver (no capture effect);
//! * a node that stops listening mid-frame loses the frame.
//!
//! The medium is generic over the MAC payload type so the protocol crate
//! can plug in its own frame vocabulary.

use crate::ids::NodeId;
use dftmsn_sim::time::SimTime;
use std::collections::HashMap;

/// A frame in flight: an opaque payload plus its size on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame<P> {
    /// The transmitting node.
    pub src: NodeId,
    /// Size on the wire in bits (drives airtime and energy).
    pub bits: u64,
    /// MAC-level payload.
    pub payload: P,
}

/// Handle identifying an ongoing transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxHandle(u64);

impl TxHandle {
    /// The underlying transmission id, for checkpointing pending `TxEnd`
    /// events.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from a checkpointed id. Only ids that appear in a
    /// [`MediumState::active`] snapshot restored into the same medium are
    /// meaningful.
    #[must_use]
    pub fn from_raw(id: u64) -> Self {
        TxHandle(id)
    }
}

/// One in-flight transmission, flattened for checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveTxState<P> {
    /// Transmission id ([`TxHandle::raw`] of the handle `begin_tx` issued).
    pub id: u64,
    /// The frame on the wire.
    pub frame: Frame<P>,
    /// Nodes within range when the transmission started.
    pub audible: Vec<NodeId>,
    /// When the transmission started.
    pub start: SimTime,
}

/// Complete serializable medium state.
///
/// `audible_count` is derived from the active audible lists on restore and
/// is deliberately absent.
#[derive(Debug, Clone, PartialEq)]
pub struct MediumState<P> {
    /// Per-node listening flags.
    pub listening: Vec<bool>,
    /// Per-node reception in progress as `(tx id, corrupted)`.
    pub rx: Vec<Option<(u64, bool)>>,
    /// In-flight transmissions, sorted by id.
    pub active: Vec<ActiveTxState<P>>,
    /// Next transmission id to issue.
    pub next_id: u64,
    /// Running totals.
    pub counters: MediumCounters,
}

#[derive(Debug)]
struct ActiveTx<P> {
    frame: Frame<P>,
    audible: Vec<NodeId>,
    start: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct RxInProgress {
    tx: u64,
    corrupted: bool,
}

/// What happened to a frame when its transmission finished.
#[derive(Debug, Clone, PartialEq)]
pub struct TxOutcome<P> {
    /// The completed frame.
    pub frame: Frame<P>,
    /// Receivers that decoded the frame intact.
    pub delivered_to: Vec<NodeId>,
    /// Audible receivers that lost the frame to a collision.
    pub collided_at: Vec<NodeId>,
}

/// Running totals kept by the medium.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MediumCounters {
    /// Frames whose transmission completed.
    pub frames_sent: u64,
    /// Successful (frame, receiver) deliveries.
    pub deliveries: u64,
    /// (frame, receiver) losses due to collision.
    pub collisions: u64,
    /// Bits of completed transmissions.
    pub bits_sent: u64,
}

/// The shared broadcast channel.
///
/// # Examples
///
/// ```
/// use dftmsn_radio::ids::NodeId;
/// use dftmsn_radio::medium::{Frame, Medium};
/// use dftmsn_sim::time::SimTime;
///
/// let mut m: Medium<&str> = Medium::new(3);
/// m.set_listening(NodeId(1), true);
/// let tx = m.begin_tx(
///     SimTime::ZERO,
///     Frame { src: NodeId(0), bits: 50, payload: "hello" },
///     &[NodeId(1), NodeId(2)], // NodeId(2) is asleep and misses it
/// );
/// let out = m.end_tx(SimTime::from_ticks(5_000), tx);
/// assert_eq!(out.delivered_to, vec![NodeId(1)]);
/// ```
#[derive(Debug)]
pub struct Medium<P> {
    listening: Vec<bool>,
    rx: Vec<Option<RxInProgress>>,
    active: HashMap<u64, ActiveTx<P>>,
    /// Audibility index: for each node, the `(id, start)` of every active
    /// transmission audible there. Maintained by `begin_tx`/`end_tx` so
    /// carrier sense and [`busy_since`](Self::busy_since) are O(audible
    /// transmissions at the node) — a handful — never O(all active
    /// transmissions in the population.
    audible_at: Vec<Vec<(u64, SimTime)>>,
    /// Retired audible lists, reused so `begin_tx` stops allocating once
    /// capacities settle (at most a handful of frames are ever in flight).
    spare_audible: Vec<Vec<NodeId>>,
    next_id: u64,
    counters: MediumCounters,
    /// Shard refinement of the active set: node→shard assignment (empty
    /// when the medium is unsharded) as maintained by the world engine at
    /// epoch barriers. Purely an index refinement — audibility semantics
    /// never consult it — so assignments may lag true positions by the
    /// boundary-band drift bound.
    shard_assign: Vec<u8>,
    /// Per-shard lists of active transmission ids audible somewhere in the
    /// shard (the source's shard included). A frame spanning `k` shards
    /// appears in all `k` lists; the `k − 1` mirrors are the cross-shard
    /// frames the epoch barrier exchanges.
    shard_active: Vec<Vec<u64>>,
    /// Lifetime count of boundary mirrors: one per extra shard an active
    /// transmission had to be announced into.
    cross_shard_frames: u64,
}

impl<P: Clone> Medium<P> {
    /// Creates a medium for `n` nodes, all initially not listening.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Medium {
            listening: vec![false; n],
            rx: vec![None; n],
            active: HashMap::new(),
            audible_at: vec![Vec::new(); n],
            spare_audible: Vec::new(),
            next_id: 0,
            counters: MediumCounters::default(),
            shard_assign: Vec::new(),
            shard_active: Vec::new(),
            cross_shard_frames: 0,
        }
    }

    /// Installs (or refreshes) the node→shard assignment and rebuilds the
    /// per-shard active lists from the transmissions currently in flight.
    /// Passing an empty assignment disables sharding. Called by the world
    /// engine at epoch barriers; between barriers the assignment may go
    /// stale by at most the boundary-band drift bound, which the band
    /// width absorbs.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length is neither zero nor the node count,
    /// or any shard id is `≥ shards` or `≥ 64` (the mirror bitmap width).
    pub fn set_sharding(&mut self, assign: Vec<u8>, shards: usize) {
        assert!(
            assign.is_empty() || assign.len() == self.listening.len(),
            "shard assignment length mismatch"
        );
        assert!(shards <= 64, "medium sharding supports at most 64 shards");
        assert!(
            assign.iter().all(|&s| usize::from(s) < shards.max(1)),
            "shard id out of range"
        );
        self.shard_assign = assign;
        self.shard_active = vec![
            Vec::new();
            if self.shard_assign.is_empty() {
                0
            } else {
                shards
            }
        ];
        if self.shard_assign.is_empty() {
            return;
        }
        // Rebuild in id order so the derived lists are deterministic.
        let mut ids: Vec<u64> = self.active.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let tx = &self.active[&id];
            let mask = self.shard_mask(tx.frame.src, &tx.audible);
            self.file_shard_mask(id, mask, false);
        }
    }

    /// Bitmap of the shards an active transmission touches. Empty when
    /// unsharded.
    fn shard_mask(&self, src: NodeId, audible: &[NodeId]) -> u64 {
        if self.shard_assign.is_empty() {
            return 0;
        }
        let mut mask = 1u64 << self.shard_assign[src.index()];
        for r in audible {
            mask |= 1u64 << self.shard_assign[r.index()];
        }
        mask
    }

    /// Files `id` into every shard list in `mask`; when `count_mirrors` is
    /// set, mirrors beyond the first shard bump the cross-shard counter.
    fn file_shard_mask(&mut self, id: u64, mask: u64, count_mirrors: bool) {
        if mask == 0 {
            return;
        }
        let mut m = mask;
        while m != 0 {
            let s = m.trailing_zeros() as usize;
            self.shard_active[s].push(id);
            m &= m - 1;
        }
        if count_mirrors {
            self.cross_shard_frames += u64::from(mask.count_ones().saturating_sub(1));
        }
    }

    /// Unfiles `id` from every shard list in `mask`.
    fn unfile_shard_mask(&mut self, id: u64, mask: u64) {
        let mut m = mask;
        while m != 0 {
            let s = m.trailing_zeros() as usize;
            let list = &mut self.shard_active[s];
            let slot = list
                .iter()
                .position(|&x| x == id)
                .expect("active transmission filed in its shard list");
            list.swap_remove(slot);
            m &= m - 1;
        }
    }

    /// Active transmissions currently audible somewhere in shard `s`
    /// (boundary mirrors included). Zero for every shard when unsharded.
    #[must_use]
    pub fn shard_active_len(&self, s: usize) -> usize {
        self.shard_active.get(s).map_or(0, Vec::len)
    }

    /// Lifetime count of boundary mirrors — the cross-shard frame
    /// announcements an epoch-barrier exchange would have carried.
    #[must_use]
    pub fn cross_shard_frames(&self) -> u64 {
        self.cross_shard_frames
    }

    /// Transmissions currently in flight (begun but not yet ended).
    #[must_use]
    pub fn airborne(&self) -> usize {
        self.active.len()
    }

    /// Number of nodes the medium was built for.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.listening.len()
    }

    /// Medium-level counters.
    #[must_use]
    pub fn counters(&self) -> MediumCounters {
        self.counters
    }

    /// Marks a node as listening (awake, radio in receive path) or not.
    ///
    /// Turning listening off aborts any reception in progress at the node —
    /// the frame is simply lost there.
    pub fn set_listening(&mut self, node: NodeId, listening: bool) {
        self.listening[node.index()] = listening;
        if !listening {
            self.rx[node.index()] = None;
        }
    }

    /// Whether the node is currently marked listening.
    #[must_use]
    pub fn is_listening(&self, node: NodeId) -> bool {
        self.listening[node.index()]
    }

    /// The listening flags as one mutable lane, for partitioning into
    /// disjoint per-worker chunks (`split_at_mut`) by the parallel epoch
    /// executor. This is the only medium state a *radio-quiet* node's
    /// wake/sleep cycle touches: such a node has no reception in progress
    /// and nothing audible, so flipping its flag here is exactly
    /// [`set_listening`](Self::set_listening) (whose rx-abort is a no-op).
    /// Callers must uphold that contract — flip only nodes for which
    /// [`is_radio_quiet`](Self::is_radio_quiet) holds.
    pub fn listening_mut(&mut self) -> &mut [bool] {
        &mut self.listening
    }

    /// True when the medium holds no per-node state for `i` beyond the
    /// listening flag: nothing audible at the node and no reception in
    /// progress. The parallel epoch executor only takes nodes that are
    /// radio-quiet (and provably stay so for the interval) onto worker
    /// threads.
    #[must_use]
    pub fn is_radio_quiet(&self, i: usize) -> bool {
        self.audible_at[i].is_empty() && self.rx[i].is_none()
    }

    /// Carrier sense: is any transmission audible at `node` right now?
    ///
    /// This reflects what the node's radio can physically detect, whether
    /// or not the node is listening.
    #[must_use]
    pub fn carrier_sensed(&self, node: NodeId) -> bool {
        !self.audible_at[node.index()].is_empty()
    }

    /// Whether the node is mid-reception of a frame (even a corrupted one).
    #[must_use]
    pub fn is_receiving(&self, node: NodeId) -> bool {
        self.rx[node.index()].is_some()
    }

    /// When the earliest still-active transmission audible at `node`
    /// started, if any. Lets MAC layers model a carrier-sense turnaround
    /// blind window: energy that appeared only moments ago is not yet
    /// detectable.
    #[must_use]
    pub fn busy_since(&self, node: NodeId) -> Option<SimTime> {
        self.audible_at[node.index()]
            .iter()
            .map(|&(_, start)| start)
            .min()
    }

    /// Starts transmitting `frame`; `audible` lists the nodes in range of
    /// the transmitter (excluding the transmitter itself).
    ///
    /// The transmitter must not be listening while transmitting
    /// (half-duplex); callers flip it with [`set_listening`].
    ///
    /// [`set_listening`]: Medium::set_listening
    ///
    /// # Panics
    ///
    /// Panics if the source node appears in its own audible set.
    pub fn begin_tx(&mut self, now: SimTime, frame: Frame<P>, audible: &[NodeId]) -> TxHandle {
        assert!(
            !audible.contains(&frame.src),
            "transmitter {} cannot hear itself",
            frame.src
        );
        let id = self.next_id;
        self.next_id += 1;
        for &r in audible {
            self.audible_at[r.index()].push((id, now));
            match self.rx[r.index()] {
                Some(ref mut rx_in_progress) => {
                    // Overlap: the ongoing reception and this new frame are
                    // both corrupted at r. The new frame never starts
                    // reception at r (rx slot stays with the first frame).
                    rx_in_progress.corrupted = true;
                }
                None => {
                    if self.listening[r.index()] {
                        self.rx[r.index()] = Some(RxInProgress {
                            tx: id,
                            corrupted: false,
                        });
                    }
                }
            }
        }
        let shard_mask = self.shard_mask(frame.src, audible);
        self.file_shard_mask(id, shard_mask, true);
        let mut audible_list = self.spare_audible.pop().unwrap_or_default();
        audible_list.extend_from_slice(audible);
        self.active.insert(
            id,
            ActiveTx {
                frame,
                audible: audible_list,
                start: now,
            },
        );
        TxHandle(id)
    }

    /// Completes a transmission, returning who received the frame intact.
    ///
    /// # Panics
    ///
    /// Panics if the handle is unknown (double `end_tx`).
    pub fn end_tx(&mut self, now: SimTime, handle: TxHandle) -> TxOutcome<P> {
        let tx = self
            .active
            .remove(&handle.0)
            .expect("end_tx on unknown or already-ended transmission");
        debug_assert!(now >= tx.start, "transmission ends before it starts");
        let shard_mask = self.shard_mask(tx.frame.src, &tx.audible);
        self.unfile_shard_mask(handle.0, shard_mask);
        let mut delivered_to = Vec::new();
        let mut collided_at = Vec::new();
        for &r in &tx.audible {
            let at = &mut self.audible_at[r.index()];
            let slot = at
                .iter()
                .position(|&(tx_id, _)| tx_id == handle.0)
                .expect("ended transmission indexed at its audible node");
            at.swap_remove(slot);
            if let Some(rx) = self.rx[r.index()] {
                if rx.tx == handle.0 {
                    self.rx[r.index()] = None;
                    if rx.corrupted {
                        collided_at.push(r);
                    } else if self.listening[r.index()] {
                        delivered_to.push(r);
                    }
                }
            }
        }
        self.counters.frames_sent += 1;
        self.counters.bits_sent += tx.frame.bits;
        self.counters.deliveries += delivered_to.len() as u64;
        self.counters.collisions += collided_at.len() as u64;
        let mut audible = tx.audible;
        audible.clear();
        self.spare_audible.push(audible);
        TxOutcome {
            frame: tx.frame,
            delivered_to,
            collided_at,
        }
    }

    /// Captures the complete medium state for checkpointing.
    ///
    /// In-flight transmissions are listed in id order so the snapshot is
    /// deterministic despite the internal hash map.
    #[must_use]
    pub fn snapshot_state(&self) -> MediumState<P> {
        let mut active: Vec<ActiveTxState<P>> = self
            .active
            .iter()
            .map(|(&id, tx)| ActiveTxState {
                id,
                frame: tx.frame.clone(),
                audible: tx.audible.clone(),
                start: tx.start,
            })
            .collect();
        active.sort_unstable_by_key(|tx| tx.id);
        MediumState {
            listening: self.listening.clone(),
            rx: self
                .rx
                .iter()
                .map(|slot| slot.map(|r| (r.tx, r.corrupted)))
                .collect(),
            active,
            next_id: self.next_id,
            counters: self.counters,
        }
    }

    /// Rebuilds a medium from a [`snapshot_state`](Self::snapshot_state)
    /// capture; the per-node audibility index is recomputed from the
    /// active transmissions' audible lists.
    ///
    /// # Panics
    ///
    /// Panics if the per-node vectors disagree in length or an audible
    /// node index is out of range.
    #[must_use]
    pub fn restore_state(state: MediumState<P>) -> Self {
        let n = state.listening.len();
        assert_eq!(state.rx.len(), n, "medium state length mismatch");
        let mut audible_at = vec![Vec::new(); n];
        let mut active = HashMap::with_capacity(state.active.len());
        for tx in state.active {
            for r in &tx.audible {
                audible_at[r.index()].push((tx.id, tx.start));
            }
            active.insert(
                tx.id,
                ActiveTx {
                    frame: tx.frame,
                    audible: tx.audible,
                    start: tx.start,
                },
            );
        }
        Medium {
            listening: state.listening,
            rx: state
                .rx
                .into_iter()
                .map(|slot| slot.map(|(tx, corrupted)| RxInProgress { tx, corrupted }))
                .collect(),
            active,
            audible_at,
            spare_audible: Vec::new(),
            next_id: state.next_id,
            counters: state.counters,
            // Restored media come up unsharded; the engine re-installs the
            // assignment (and rebuilds the per-shard lists) on its first
            // epoch barrier. Mirror counters are telemetry, not state.
            shard_assign: Vec::new(),
            shard_active: Vec::new(),
            cross_shard_frames: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftmsn_sim::time::SimDuration;

    fn frame(src: usize, payload: u32) -> Frame<u32> {
        Frame {
            src: NodeId(src),
            bits: 50,
            payload,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn clean_broadcast_reaches_all_listeners() {
        let mut m: Medium<u32> = Medium::new(4);
        for i in 1..4 {
            m.set_listening(NodeId(i), true);
        }
        let tx = m.begin_tx(t(0), frame(0, 7), &[NodeId(1), NodeId(2), NodeId(3)]);
        let out = m.end_tx(t(5), tx);
        assert_eq!(out.delivered_to, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(out.collided_at.is_empty());
        assert_eq!(out.frame.payload, 7);
    }

    #[test]
    fn sleeping_node_misses_frame() {
        let mut m: Medium<u32> = Medium::new(3);
        m.set_listening(NodeId(1), true);
        // NodeId(2) never listens.
        let tx = m.begin_tx(t(0), frame(0, 1), &[NodeId(1), NodeId(2)]);
        let out = m.end_tx(t(5), tx);
        assert_eq!(out.delivered_to, vec![NodeId(1)]);
    }

    #[test]
    fn overlapping_frames_collide_at_common_receiver() {
        let mut m: Medium<u32> = Medium::new(4);
        m.set_listening(NodeId(2), true);
        let a = m.begin_tx(t(0), frame(0, 10), &[NodeId(2)]);
        let b = m.begin_tx(t(1), frame(1, 11), &[NodeId(2)]);
        let out_a = m.end_tx(t(5), a);
        assert!(out_a.delivered_to.is_empty());
        assert_eq!(out_a.collided_at, vec![NodeId(2)]);
        let out_b = m.end_tx(t(6), b);
        // Frame b never began reception at node 2, so it is neither
        // delivered nor counted as a collision loss there.
        assert!(out_b.delivered_to.is_empty());
        assert!(out_b.collided_at.is_empty());
    }

    #[test]
    fn disjoint_receivers_do_not_interfere() {
        let mut m: Medium<u32> = Medium::new(4);
        m.set_listening(NodeId(2), true);
        m.set_listening(NodeId(3), true);
        let a = m.begin_tx(t(0), frame(0, 10), &[NodeId(2)]);
        let b = m.begin_tx(t(1), frame(1, 11), &[NodeId(3)]);
        assert_eq!(m.end_tx(t(5), a).delivered_to, vec![NodeId(2)]);
        assert_eq!(m.end_tx(t(6), b).delivered_to, vec![NodeId(3)]);
    }

    #[test]
    fn late_listener_cannot_join_mid_frame() {
        let mut m: Medium<u32> = Medium::new(2);
        let tx = m.begin_tx(t(0), frame(0, 1), &[NodeId(1)]);
        m.set_listening(NodeId(1), true); // wakes up after the frame started
        let out = m.end_tx(t(5), tx);
        assert!(out.delivered_to.is_empty());
    }

    #[test]
    fn listener_that_sleeps_mid_frame_loses_it() {
        let mut m: Medium<u32> = Medium::new(2);
        m.set_listening(NodeId(1), true);
        let tx = m.begin_tx(t(0), frame(0, 1), &[NodeId(1)]);
        m.set_listening(NodeId(1), false);
        let out = m.end_tx(t(5), tx);
        assert!(out.delivered_to.is_empty());
        assert!(out.collided_at.is_empty(), "an abort is not a collision");
    }

    #[test]
    fn busy_since_reports_earliest_audible_start() {
        let mut m: Medium<u32> = Medium::new(4);
        assert_eq!(m.busy_since(NodeId(1)), None);
        let a = m.begin_tx(t(3), frame(0, 1), &[NodeId(1)]);
        let b = m.begin_tx(t(5), frame(2, 2), &[NodeId(1), NodeId(3)]);
        assert_eq!(m.busy_since(NodeId(1)), Some(t(3)));
        assert_eq!(m.busy_since(NodeId(3)), Some(t(5)));
        m.end_tx(t(8), a);
        assert_eq!(m.busy_since(NodeId(1)), Some(t(5)));
        m.end_tx(t(10), b);
        assert_eq!(m.busy_since(NodeId(1)), None);
    }

    #[test]
    fn carrier_sense_tracks_audible_transmissions() {
        let mut m: Medium<u32> = Medium::new(3);
        assert!(!m.carrier_sensed(NodeId(1)));
        let tx = m.begin_tx(t(0), frame(0, 1), &[NodeId(1)]);
        assert!(m.carrier_sensed(NodeId(1)));
        assert!(!m.carrier_sensed(NodeId(2)), "out of range");
        m.end_tx(t(5), tx);
        assert!(!m.carrier_sensed(NodeId(1)));
    }

    #[test]
    fn counters_accumulate() {
        let mut m: Medium<u32> = Medium::new(3);
        m.set_listening(NodeId(1), true);
        m.set_listening(NodeId(2), true);
        let a = m.begin_tx(t(0), frame(0, 1), &[NodeId(1), NodeId(2)]);
        m.end_tx(t(5), a);
        let c = m.counters();
        assert_eq!(c.frames_sent, 1);
        assert_eq!(c.deliveries, 2);
        assert_eq!(c.collisions, 0);
        assert_eq!(c.bits_sent, 50);
    }

    #[test]
    fn three_way_collision_corrupts_first_frame_once() {
        let mut m: Medium<u32> = Medium::new(4);
        m.set_listening(NodeId(3), true);
        let a = m.begin_tx(t(0), frame(0, 1), &[NodeId(3)]);
        let b = m.begin_tx(t(1), frame(1, 2), &[NodeId(3)]);
        let c = m.begin_tx(t(2), frame(2, 3), &[NodeId(3)]);
        assert_eq!(m.end_tx(t(5), a).collided_at, vec![NodeId(3)]);
        assert!(m.end_tx(t(6), b).collided_at.is_empty());
        assert!(m.end_tx(t(7), c).collided_at.is_empty());
        assert!(!m.is_receiving(NodeId(3)));
    }

    #[test]
    fn snapshot_restore_preserves_in_flight_frames() {
        let mut m: Medium<u32> = Medium::new(4);
        m.set_listening(NodeId(2), true);
        m.set_listening(NodeId(3), true);
        let done = m.begin_tx(t(0), frame(0, 9), &[NodeId(3)]);
        m.end_tx(t(2), done); // bump counters and next_id before snapshot
        let a = m.begin_tx(t(3), frame(0, 10), &[NodeId(2)]);
        let b = m.begin_tx(t(4), frame(1, 11), &[NodeId(2), NodeId(3)]);
        let mut restored = Medium::restore_state(m.snapshot_state());
        assert_eq!(restored.counters(), m.counters());
        assert_eq!(restored.busy_since(NodeId(2)), m.busy_since(NodeId(2)));
        assert!(restored.carrier_sensed(NodeId(3)));
        // Handles survive as raw ids; outcomes must match the original.
        let a2 = TxHandle::from_raw(a.raw());
        let b2 = TxHandle::from_raw(b.raw());
        assert_eq!(m.end_tx(t(8), a), restored.end_tx(t(8), a2));
        assert_eq!(m.end_tx(t(9), b), restored.end_tx(t(9), b2));
        assert_eq!(restored.counters(), m.counters());
        assert!(!restored.carrier_sensed(NodeId(2)));
    }

    #[test]
    fn shard_lists_track_active_transmissions_with_mirrors() {
        let mut m: Medium<u32> = Medium::new(4);
        // Nodes 0,1 in shard 0; nodes 2,3 in shard 1.
        m.set_sharding(vec![0, 0, 1, 1], 2);
        m.set_listening(NodeId(1), true);
        m.set_listening(NodeId(2), true);
        // Local frame: 0 → 1, shard 0 only.
        let a = m.begin_tx(t(0), frame(0, 1), &[NodeId(1)]);
        assert_eq!(m.shard_active_len(0), 1);
        assert_eq!(m.shard_active_len(1), 0);
        assert_eq!(m.cross_shard_frames(), 0);
        // Boundary frame: 1 → 2 spans both shards, one mirror.
        let b = m.begin_tx(t(1), frame(1, 2), &[NodeId(2)]);
        assert_eq!(m.shard_active_len(0), 2);
        assert_eq!(m.shard_active_len(1), 1);
        assert_eq!(m.cross_shard_frames(), 1);
        m.end_tx(t(5), a);
        assert_eq!(m.shard_active_len(0), 1);
        m.end_tx(t(6), b);
        assert_eq!(m.shard_active_len(0), 0);
        assert_eq!(m.shard_active_len(1), 0);
        // Unsharded media report empty shard lists.
        let plain: Medium<u32> = Medium::new(2);
        assert_eq!(plain.shard_active_len(0), 0);
    }

    #[test]
    fn resharding_mid_flight_rebuilds_the_lists() {
        let mut m: Medium<u32> = Medium::new(4);
        m.set_sharding(vec![0, 0, 1, 1], 2);
        m.set_listening(NodeId(3), true);
        let tx = m.begin_tx(t(0), frame(2, 9), &[NodeId(3)]);
        assert_eq!(m.shard_active_len(1), 1);
        // Nodes drift: 2 and 3 now belong to shard 0. The refreshed lists
        // must agree with the new assignment, and end_tx must unfile
        // cleanly under it.
        m.set_sharding(vec![0, 0, 0, 0], 2);
        assert_eq!(m.shard_active_len(0), 1);
        assert_eq!(m.shard_active_len(1), 0);
        let out = m.end_tx(t(5), tx);
        assert_eq!(out.delivered_to, vec![NodeId(3)]);
        assert_eq!(m.shard_active_len(0), 0);
        // Disabling sharding clears the refinement entirely.
        m.set_sharding(Vec::new(), 1);
        let tx2 = m.begin_tx(t(6), frame(0, 1), &[NodeId(3)]);
        assert_eq!(m.shard_active_len(0), 0);
        assert_eq!(m.cross_shard_frames(), 0); // 2 → 3 never crossed shards
        m.end_tx(t(7), tx2);
    }

    #[test]
    #[should_panic(expected = "cannot hear itself")]
    fn self_audibility_panics() {
        let mut m: Medium<u32> = Medium::new(2);
        m.begin_tx(t(0), frame(0, 1), &[NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "unknown or already-ended")]
    fn double_end_tx_panics() {
        let mut m: Medium<u32> = Medium::new(2);
        let tx = m.begin_tx(t(0), frame(0, 1), &[]);
        m.end_tx(t(1), tx);
        m.end_tx(t(2), tx);
    }
}
