//! Property-based tests of the radio substrate: conservation laws of the
//! medium and consistency of the energy meter.

use dftmsn_radio::channel::ChannelParams;
use dftmsn_radio::energy::{EnergyMeter, EnergyModel, RadioState};
use dftmsn_radio::ids::NodeId;
use dftmsn_radio::medium::{Frame, Medium};
use dftmsn_sim::rng::SimRng;
use dftmsn_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Under an arbitrary schedule of overlapping broadcasts, every frame's
    /// outcome partitions its audible set: delivered ∪ collided ⊆ audible,
    /// disjoint, and only listeners ever appear.
    #[test]
    fn medium_outcomes_partition_audible_sets(
        seed in any::<u64>(),
        n_nodes in 2usize..10,
        n_frames in 1usize..30,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let mut medium: Medium<u32> = Medium::new(n_nodes);
        let mut listening = vec![false; n_nodes];
        for (i, l) in listening.iter_mut().enumerate() {
            *l = rng.gen_bool(0.7);
            medium.set_listening(NodeId(i), *l);
        }

        let mut active: Vec<(dftmsn_radio::medium::TxHandle, Vec<NodeId>, SimTime)> = Vec::new();
        let mut now = SimTime::ZERO;
        for f in 0..n_frames {
            now += SimDuration::from_millis(rng.gen_range_inclusive(0, 4));
            // Sometimes finish an active frame first.
            if !active.is_empty() && rng.gen_bool(0.5) {
                let (handle, audible, _start) = active.remove(0);
                let out = medium.end_tx(now, handle);
                let delivered: std::collections::HashSet<_> =
                    out.delivered_to.iter().copied().collect();
                let collided: std::collections::HashSet<_> =
                    out.collided_at.iter().copied().collect();
                prop_assert!(delivered.is_disjoint(&collided));
                for r in delivered.iter().chain(collided.iter()) {
                    prop_assert!(audible.contains(r), "outcome outside audible set");
                }
                for r in &delivered {
                    prop_assert!(listening[r.index()], "non-listener decoded a frame");
                }
            }
            let src = NodeId(rng.gen_range_u64(n_nodes as u64) as usize);
            let audible: Vec<NodeId> = (0..n_nodes)
                .filter(|&j| j != src.index() && rng.gen_bool(0.5))
                .map(NodeId)
                .collect();
            let handle = medium.begin_tx(
                now,
                Frame { src, bits: 50, payload: f as u32 },
                &audible,
            );
            active.push((handle, audible, now));
        }
        // Drain the rest.
        for (handle, audible, _start) in active {
            now += SimDuration::from_millis(5);
            let out = medium.end_tx(now, handle);
            for r in out.delivered_to.iter().chain(out.collided_at.iter()) {
                prop_assert!(audible.contains(r));
            }
        }
        // All transmissions ended: no residual carrier anywhere.
        for i in 0..n_nodes {
            prop_assert!(!medium.carrier_sensed(NodeId(i)));
            prop_assert!(!medium.is_receiving(NodeId(i)));
        }
    }

    /// A lone transmission to always-listening receivers is always
    /// delivered to all of them.
    #[test]
    fn lone_frames_always_deliver(seed in any::<u64>(), n in 2usize..12) {
        let mut rng = SimRng::seed_from(seed);
        let mut medium: Medium<u8> = Medium::new(n);
        for i in 1..n {
            medium.set_listening(NodeId(i), true);
        }
        for round in 0..10u8 {
            let audible: Vec<NodeId> = (1..n).map(NodeId).collect();
            let start = SimTime::from_ticks(u64::from(round) * 10_000 + rng.gen_range_u64(100));
            let tx = medium.begin_tx(
                start,
                Frame { src: NodeId(0), bits: 50, payload: round },
                &audible,
            );
            let out = medium.end_tx(start + SimDuration::from_millis(5), tx);
            prop_assert_eq!(out.delivered_to.len(), n - 1);
            prop_assert!(out.collided_at.is_empty());
        }
    }

    /// The energy meter is additive: total equals the sum over state
    /// intervals plus switch costs, for any state schedule.
    #[test]
    fn meter_total_is_sum_of_parts(
        seed in any::<u64>(),
        steps in proptest::collection::vec((0u8..4, 1u64..10_000), 1..40),
    ) {
        let model = EnergyModel::berkeley_mote();
        let mut meter = EnergyMeter::new(RadioState::Idle);
        let mut now = SimTime::ZERO;
        let mut expected = 0.0;
        let mut prev = RadioState::Idle;
        let _ = seed;
        for (s, dur) in steps {
            let next = RadioState::ALL[s as usize % 4];
            let dt = SimDuration::from_millis(dur);
            expected += dt.as_secs_f64() * model.power_w(prev);
            if prev.is_awake() != next.is_awake() {
                expected += model.e_switch_j;
            }
            now += dt;
            meter.set_state(now, next, &model);
            prev = next;
        }
        let total = meter.total_energy_j(now, &model);
        prop_assert!((total - expected).abs() < 1e-9, "total {total} vs {expected}");
    }

    /// Airtime is linear in bits (up to rounding) and inversely
    /// proportional to bandwidth.
    #[test]
    fn airtime_scaling_laws(bits in 1u64..100_000, bw in 1u64..1_000_000) {
        let ch = ChannelParams { bandwidth_bps: bw, range_m: 10.0 };
        let one = ch.airtime(bits);
        let two = ch.airtime(bits * 2);
        // Doubling bits at most doubles airtime (+1 µs rounding).
        prop_assert!(two.ticks() <= one.ticks() * 2 + 1);
        prop_assert!(two.ticks() + 1 >= one.ticks() * 2);
        let faster = ChannelParams { bandwidth_bps: bw * 2, range_m: 10.0 };
        prop_assert!(faster.airtime(bits) <= one);
    }
}
