//! A small, dependency-free argument parser for the `dftmsn` CLI.
//!
//! `run` and `compare` share one [`RunConfig`] so scenario, seed, fault
//! and observation plumbing is parsed (and validated) exactly once;
//! per-command flag whitelists keep `dftmsn compare --csv` an error
//! instead of a silent no-op.

use dftmsn_core::behavior;
use dftmsn_core::faults::FaultPlan;
use dftmsn_core::params::ScenarioParams;
use dftmsn_core::policy::PolicySpec;
use dftmsn_core::variants::ProtocolKind;

/// Where to stream windowed observation rows, and how wide each window is.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveArgs {
    /// JSONL output path (`-` is not special; it is a file named `-`).
    pub path: String,
    /// Aggregation window in simulated seconds (default 100).
    pub window_secs: f64,
}

/// Periodic checkpointing of a `run`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointArgs {
    /// Checkpoint file path (rotated atomically; `<path>.bak` keeps the
    /// previous snapshot).
    pub path: String,
    /// Write a checkpoint every this many *simulated* seconds; `None`
    /// checkpoints only on SIGINT/SIGTERM.
    pub every_secs: Option<f64>,
}

/// Everything needed to execute one (or, for `compare`, one per variant)
/// simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Variant to simulate (`compare` ignores this and runs them all).
    pub protocol: ProtocolKind,
    /// Forwarding policy. [`PolicySpec::Builtin`] keeps the variant's own
    /// rules; `run` executes the named policy instead, `compare` appends
    /// it as an extra row after the builtin panel.
    pub policy: PolicySpec,
    /// Scenario, after applying overrides.
    pub scenario: ScenarioParams,
    /// Seed.
    pub seed: u64,
    /// Fault events to inject (empty = fault-free run).
    pub faults: FaultPlan,
    /// Attach a windowed metrics recorder streaming JSONL to a file.
    pub observe: Option<ObserveArgs>,
    /// Write checkpoints during the run.
    pub checkpoint: Option<CheckpointArgs>,
    /// Resume a previous run from this checkpoint file instead of
    /// starting fresh (scenario/protocol/seed come from the snapshot).
    pub resume: Option<String>,
    /// Worker threads for within-epoch parallel event execution (1 =
    /// sequential). Bit-identical results for every value; valid with
    /// `--resume` because, like the shard count, it is never serialized.
    pub threads: usize,
    /// Emit the delivery log as CSV on stdout instead of the summary.
    pub csv: bool,
    /// Emit the full report as JSON on stdout instead of the summary.
    pub json: bool,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one simulation and print its report.
    Run(RunConfig),
    /// Run every variant on one scenario and print a comparison table.
    Compare(RunConfig),
    /// Summarize a JSONL observation file produced by `run --observe`.
    Inspect {
        /// The JSONL file to read.
        path: String,
        /// Show one named series in detail instead of the summary table.
        series: Option<String>,
        /// Sparkline width in characters.
        width: usize,
    },
    /// Print the analytic contact/delivery model values for a scenario.
    Analyze {
        /// Scenario, after applying overrides.
        scenario: ScenarioParams,
    },
    /// Print usage.
    Help,
}

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage text.
pub const USAGE: &str = "\
dftmsn — Delay/Fault-Tolerant Mobile Sensor Network simulator (ICDCS 2007)

USAGE:
    dftmsn run      [--protocol OPT|NOOPT|NOSLEEP|ZBR|DIRECT|EPIDEMIC]
                    [--policy NAME[:k=v,...]]
                    [scenario flags] [--seed N] [--fault-plan SPEC]
                    [--behaviors SPEC]
                    [--observe FILE [--window SECS]] [--csv | --json]
                    [--checkpoint FILE [--checkpoint-every SECS]]
                    [--resume FILE] [--threads N]
    dftmsn compare  [--policy NAME[:k=v,...]]
                    [scenario flags] [--seed N] [--fault-plan SPEC]
                    [--behaviors SPEC]
    dftmsn inspect  FILE [--series NAME] [--width CHARS]
    dftmsn analyze  [scenario flags]
    dftmsn help

SCENARIO FLAGS (defaults = the paper's Sec. 5 setup):
    --sensors N        number of wearable sensors        (100)
    --sinks N          number of sink nodes              (3)
    --duration SECS    simulated seconds                 (25000)
    --speed-max M/S    maximum node speed                (5)
    --seed N           run seed                          (1)
    --area METERS      square area side                  (150)

OBSERVATION (run only):
    --observe FILE     stream windowed metrics as JSONL to FILE
    --window SECS      aggregation window in sim seconds (100)

EXECUTION (run only):
    --threads N        worker threads for within-epoch parallel event
                       execution (1). A pure execution knob: results are
                       bit-identical for every value. Ignored while an
                       observer is attached (it watches individual
                       events). Valid with --resume.

INSPECT:
    --series NAME      show one series (e.g. deliveries, xi_mean) in detail
    --width CHARS      sparkline width                   (60)

CHECKPOINTING (run only):
    --checkpoint FILE       write dftmsn-ckpt/1 snapshots to FILE (atomic;
                            the previous snapshot rotates to FILE.bak)
    --checkpoint-every SECS snapshot every SECS simulated seconds
                            (without it, only SIGINT/SIGTERM snapshot)
    --resume FILE           continue an interrupted run from FILE; the
                            scenario, protocol, seed and fault plan come
                            from the snapshot, so those flags conflict.
                            Pass the original --observe FILE to continue
                            its JSONL stream byte-exactly.

FORWARDING POLICY (--policy NAME[:k=v,...], case-insensitive):
    builtin            the variant's own rules (default)
    twohop[:budget=N]  two-hop relay; source spreads at most N copies to
                       relays, relays hand over to sinks only      (N=4)
    meetrate[:horizon=S,debounce=S,beta=B]
                       sink meeting-rate estimator drives selection
                       (horizon 600 s, debounce 5 s, beta 0.3)
    A non-builtin --policy replaces the variant's forwarding rules, so it
    conflicts with --protocol on 'run'; 'compare' appends the policy as an
    extra row after the six builtin variants.

FAULT PLAN SPEC (';'-separated directives, e.g. \"crash=0.3;linkdrop=0.2\"):
    none               explicit empty plan
    crash=F            fraction F of sensors suffer battery death
    churn=F@R          fraction F crash, each recovering after R seconds
    linkdrop=P         every frame dropped with probability P
    corrupt=P          received DATA frames corrupted with probability P
    sinkout=I@T1-T2    sink number I (0-based) offline from T1 to T2 secs

BEHAVIORS SPEC (';'-separated, e.g. \"selfish=0.25\" or \"liar=0.1@500\"):
    none                         explicit empty spec
    selfish|liar|forger|blackhole=F[@T]
                       fraction F of sensors adopt the behavior at time T
                       (0 secs when omitted). Victim sets are disjoint,
                       seed-deterministic, and drawn from the fault RNG
                       stream, so honest runs stay bit-identical.
    Combines with --fault-plan: behavior changes are appended after the
    fault plan's directives.

EXIT CODES:
    0 ok   1 runtime error   2 usage   3 I/O error
    4 corrupt or invalid checkpoint/observation file
    130/143 interrupted by SIGINT/SIGTERM (a final checkpoint is written
    first when --checkpoint is set, and the partial report is printed)
";

fn parse_protocol(s: &str) -> Result<ProtocolKind, ParseError> {
    match s.to_ascii_uppercase().as_str() {
        "OPT" => Ok(ProtocolKind::Opt),
        "NOOPT" => Ok(ProtocolKind::NoOpt),
        "NOSLEEP" => Ok(ProtocolKind::NoSleep),
        "ZBR" => Ok(ProtocolKind::Zbr),
        "DIRECT" => Ok(ProtocolKind::Direct),
        "EPIDEMIC" => Ok(ProtocolKind::Epidemic),
        other => Err(ParseError(format!("unknown protocol '{other}'"))),
    }
}

fn take_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<&'a str, ParseError> {
    it.next()
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, ParseError> {
    v.parse()
        .map_err(|_| ParseError(format!("invalid value '{v}' for {flag}")))
}

fn parse_inspect(rest: &[&str]) -> Result<Command, ParseError> {
    let mut path: Option<String> = None;
    let mut series: Option<String> = None;
    let mut width = 60usize;
    let mut it = rest.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--series" => series = Some(take_value(arg, &mut it)?.to_owned()),
            "--width" => {
                width = parse_num(arg, take_value(arg, &mut it)?)?;
                if width == 0 {
                    return Err(ParseError("--width must be at least 1".to_owned()));
                }
            }
            flag if flag.starts_with("--") => {
                return Err(ParseError(format!("unknown flag '{flag}' for 'inspect'")));
            }
            file => {
                if path.replace(file.to_owned()).is_some() {
                    return Err(ParseError("inspect takes exactly one FILE".to_owned()));
                }
            }
        }
    }
    let Some(path) = path else {
        return Err(ParseError("inspect needs a FILE argument".to_owned()));
    };
    Ok(Command::Inspect {
        path,
        series,
        width,
    })
}

/// Parses the full argument list (without the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first invalid flag or value.
pub fn parse(args: &[&str]) -> Result<Command, ParseError> {
    let Some((&cmd, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match cmd {
        "help" | "--help" | "-h" => return Ok(Command::Help),
        "inspect" => return parse_inspect(rest),
        "run" | "compare" | "analyze" => {}
        other => return Err(ParseError(format!("unknown command '{other}'"))),
    }

    let mut scenario = ScenarioParams::paper_default();
    let mut protocol = ProtocolKind::Opt;
    let mut protocol_flag = false;
    let mut policy = PolicySpec::Builtin;
    let mut seed = 1u64;
    let mut fault_spec: Option<&str> = None;
    let mut behavior_spec: Option<&str> = None;
    let mut observe_path: Option<String> = None;
    let mut window_secs: Option<f64> = None;
    let mut checkpoint_path: Option<String> = None;
    let mut checkpoint_every: Option<f64> = None;
    let mut resume: Option<String> = None;
    let mut threads = 1usize;
    let mut csv = false;
    let mut json = false;
    // Flags that define a *fresh* run; they conflict with --resume, whose
    // snapshot already fixes the scenario, protocol, seed and fault plan.
    let mut fresh_run_flags: Vec<&str> = Vec::new();

    // Flags valid only for a subset of the commands; anything else is a
    // scenario flag shared by all three.
    let run_only = |flag: &str| -> Result<(), ParseError> {
        if cmd == "run" {
            Ok(())
        } else {
            Err(ParseError(format!("flag '{flag}' is only valid for 'run'")))
        }
    };
    let not_analyze = |flag: &str| -> Result<(), ParseError> {
        if cmd == "analyze" {
            Err(ParseError(format!(
                "flag '{flag}' is not valid for 'analyze'"
            )))
        } else {
            Ok(())
        }
    };

    let mut it = rest.iter().copied();
    while let Some(flag) = it.next() {
        match flag {
            "--protocol" => {
                run_only(flag)?;
                fresh_run_flags.push(flag);
                protocol_flag = true;
                protocol = parse_protocol(take_value(flag, &mut it)?)?;
            }
            "--policy" => {
                not_analyze(flag)?;
                fresh_run_flags.push(flag);
                policy = PolicySpec::parse(take_value(flag, &mut it)?)
                    .map_err(|e| ParseError(format!("invalid policy: {e}")))?;
            }
            "--sensors" => {
                fresh_run_flags.push(flag);
                scenario.sensors = parse_num(flag, take_value(flag, &mut it)?)?;
            }
            "--sinks" => {
                fresh_run_flags.push(flag);
                scenario.sinks = parse_num(flag, take_value(flag, &mut it)?)?;
            }
            "--duration" => {
                fresh_run_flags.push(flag);
                scenario.duration_secs = parse_num(flag, take_value(flag, &mut it)?)?;
            }
            "--speed-max" => {
                fresh_run_flags.push(flag);
                scenario.speed_max_mps = parse_num(flag, take_value(flag, &mut it)?)?;
            }
            "--area" => {
                fresh_run_flags.push(flag);
                let side: f64 = parse_num(flag, take_value(flag, &mut it)?)?;
                scenario.area_width_m = side;
                scenario.area_height_m = side;
            }
            "--seed" => {
                not_analyze(flag)?;
                fresh_run_flags.push(flag);
                seed = parse_num(flag, take_value(flag, &mut it)?)?;
            }
            "--fault-plan" => {
                not_analyze(flag)?;
                fresh_run_flags.push(flag);
                fault_spec = Some(take_value(flag, &mut it)?);
            }
            "--behaviors" => {
                not_analyze(flag)?;
                fresh_run_flags.push(flag);
                behavior_spec = Some(take_value(flag, &mut it)?);
            }
            "--observe" => {
                run_only(flag)?;
                observe_path = Some(take_value(flag, &mut it)?.to_owned());
            }
            "--window" => {
                run_only(flag)?;
                let w: f64 = parse_num(flag, take_value(flag, &mut it)?)?;
                if !w.is_finite() || w <= 0.0 {
                    return Err(ParseError(format!(
                        "--window must be a positive number of seconds, got '{w}'"
                    )));
                }
                window_secs = Some(w);
            }
            "--checkpoint" => {
                run_only(flag)?;
                checkpoint_path = Some(take_value(flag, &mut it)?.to_owned());
            }
            "--checkpoint-every" => {
                run_only(flag)?;
                let s: f64 = parse_num(flag, take_value(flag, &mut it)?)?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(ParseError(format!(
                        "--checkpoint-every must be a positive number of seconds, got '{s}'"
                    )));
                }
                checkpoint_every = Some(s);
            }
            "--resume" => {
                run_only(flag)?;
                resume = Some(take_value(flag, &mut it)?.to_owned());
            }
            // Not a fresh-run flag: the thread count is a pure execution
            // knob (never serialized), so it composes with --resume.
            "--threads" => {
                run_only(flag)?;
                threads = parse_num(flag, take_value(flag, &mut it)?)?;
                if threads == 0 {
                    return Err(ParseError("--threads must be at least 1".to_owned()));
                }
            }
            "--csv" => {
                run_only(flag)?;
                csv = true;
            }
            "--json" => {
                run_only(flag)?;
                json = true;
            }
            other => return Err(ParseError(format!("unknown flag '{other}'"))),
        }
    }
    scenario
        .validate()
        .map_err(|e| ParseError(format!("invalid scenario: {e}")))?;
    // The plan is expanded only after every scenario override landed: the
    // node-fraction and sink-ordinal directives target the final topology.
    let mut faults = match fault_spec {
        Some(spec) => FaultPlan::parse(spec, &scenario, seed)
            .map_err(|e| ParseError(format!("invalid fault plan: {e}")))?,
        None => FaultPlan::default(),
    };
    // Behaviors expand to BehaviorChange events appended after the fault
    // plan's own — the documented stable (time, insertion) extend order.
    if let Some(spec) = behavior_spec {
        let plan = behavior::parse_spec(spec, &scenario, seed)
            .map_err(|e| ParseError(format!("invalid behavior spec: {e}")))?;
        faults.extend(plan);
    }
    if window_secs.is_some() && observe_path.is_none() {
        return Err(ParseError("--window requires --observe".to_owned()));
    }
    if checkpoint_every.is_some() && checkpoint_path.is_none() {
        return Err(ParseError(
            "--checkpoint-every requires --checkpoint".to_owned(),
        ));
    }
    if resume.is_some() {
        if let Some(conflict) = fresh_run_flags.first() {
            return Err(ParseError(format!(
                "'{conflict}' conflicts with --resume: the checkpoint already \
                 fixes the scenario, protocol, seed and fault plan"
            )));
        }
    }
    if csv && json {
        return Err(ParseError(
            "--csv and --json are mutually exclusive".to_owned(),
        ));
    }
    if protocol_flag && policy != PolicySpec::Builtin {
        return Err(ParseError(format!(
            "--protocol conflicts with --policy {}: a non-builtin policy \
             replaces the variant's forwarding rules",
            policy.label()
        )));
    }
    let observe = observe_path.map(|path| ObserveArgs {
        path,
        window_secs: window_secs.unwrap_or(100.0),
    });
    let checkpoint = checkpoint_path.map(|path| CheckpointArgs {
        path,
        every_secs: checkpoint_every,
    });

    let config = RunConfig {
        protocol,
        policy,
        scenario,
        seed,
        faults,
        observe,
        checkpoint,
        resume,
        threads,
        csv,
        json,
    };
    match cmd {
        "run" => Ok(Command::Run(config)),
        "compare" => Ok(Command::Compare(config)),
        "analyze" => Ok(Command::Analyze {
            scenario: config.scenario,
        }),
        _ => unreachable!("command whitelist checked above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftmsn_core::policy::MeetingRate;

    #[test]
    fn empty_args_mean_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&["help"]), Ok(Command::Help));
        assert_eq!(parse(&["--help"]), Ok(Command::Help));
    }

    #[test]
    fn run_with_overrides() {
        let cmd = parse(&[
            "run",
            "--protocol",
            "zbr",
            "--sensors",
            "40",
            "--sinks",
            "5",
            "--duration",
            "1000",
            "--seed",
            "9",
            "--csv",
        ])
        .unwrap();
        match cmd {
            Command::Run(cfg) => {
                assert_eq!(cfg.protocol, ProtocolKind::Zbr);
                assert_eq!(cfg.scenario.sensors, 40);
                assert_eq!(cfg.scenario.sinks, 5);
                assert_eq!(cfg.scenario.duration_secs, 1000);
                assert_eq!(cfg.seed, 9);
                assert!(cfg.faults.is_empty());
                assert!(cfg.observe.is_none());
                assert!(cfg.csv);
                assert!(!cfg.json);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn observe_flags_parse_with_defaulted_window() {
        let Ok(Command::Run(cfg)) = parse(&["run", "--observe", "out.jsonl"]) else {
            panic!("parse failed");
        };
        let obs = cfg.observe.expect("observe args");
        assert_eq!(obs.path, "out.jsonl");
        assert_eq!(obs.window_secs, 100.0);

        let Ok(Command::Run(cfg)) = parse(&["run", "--observe", "out.jsonl", "--window", "2.5"])
        else {
            panic!("parse failed");
        };
        assert_eq!(cfg.observe.unwrap().window_secs, 2.5);
    }

    #[test]
    fn window_without_observe_is_an_error() {
        let err = parse(&["run", "--window", "10"]).unwrap_err();
        assert!(err.0.contains("requires --observe"), "{err}");
    }

    #[test]
    fn non_positive_windows_are_rejected() {
        for w in ["0", "-5", "nan", "inf"] {
            let err = parse(&["run", "--observe", "o.jsonl", "--window", w]).unwrap_err();
            assert!(
                err.0.contains("--window") || err.0.contains("invalid value"),
                "window {w}: {err}"
            );
        }
    }

    #[test]
    fn run_only_flags_are_rejected_elsewhere() {
        for flag in [
            &["compare", "--csv"][..],
            &["compare", "--json"],
            &["compare", "--protocol", "opt"],
            &["compare", "--observe", "o.jsonl"],
            &["compare", "--window", "10"],
            &["analyze", "--seed", "2"],
            &["analyze", "--fault-plan", "none"],
        ] {
            let err = parse(flag).unwrap_err();
            assert!(err.0.contains("valid"), "{flag:?}: {err}");
        }
    }

    #[test]
    fn csv_and_json_are_mutually_exclusive() {
        let err = parse(&["run", "--csv", "--json"]).unwrap_err();
        assert!(err.0.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn inspect_parses_path_and_options() {
        assert_eq!(
            parse(&["inspect", "out.jsonl"]),
            Ok(Command::Inspect {
                path: "out.jsonl".to_owned(),
                series: None,
                width: 60,
            })
        );
        assert_eq!(
            parse(&[
                "inspect",
                "out.jsonl",
                "--series",
                "xi_mean",
                "--width",
                "30"
            ]),
            Ok(Command::Inspect {
                path: "out.jsonl".to_owned(),
                series: Some("xi_mean".to_owned()),
                width: 30,
            })
        );
    }

    #[test]
    fn inspect_argument_errors() {
        assert!(parse(&["inspect"]).unwrap_err().0.contains("FILE"));
        assert!(parse(&["inspect", "a", "b"])
            .unwrap_err()
            .0
            .contains("exactly one"));
        assert!(parse(&["inspect", "a", "--width", "0"])
            .unwrap_err()
            .0
            .contains("at least 1"));
        assert!(parse(&["inspect", "a", "--wat"])
            .unwrap_err()
            .0
            .contains("unknown flag"));
        assert!(parse(&["inspect", "a", "--series"])
            .unwrap_err()
            .0
            .contains("needs a value"));
    }

    #[test]
    fn fault_plan_flag_expands_against_the_final_scenario() {
        let Ok(Command::Run(cfg)) = parse(&[
            "run",
            "--fault-plan",
            "crash=0.5;linkdrop=0.25",
            "--sensors",
            "10",
            "--sinks",
            "2",
        ]) else {
            panic!("parse failed");
        };
        // 50% of the *overridden* 10 sensors die, plus one global-link event,
        // even though the flag came before the --sensors override.
        assert_eq!(cfg.faults.len(), 6);
    }

    #[test]
    fn fault_plan_flag_reaches_compare_too() {
        let Ok(Command::Compare(cfg)) = parse(&["compare", "--fault-plan", "linkdrop=0.1"]) else {
            panic!("parse failed");
        };
        assert_eq!(cfg.faults.len(), 1);
    }

    #[test]
    fn bad_fault_plans_are_parse_errors_not_panics() {
        let err = parse(&["run", "--fault-plan", "explode=1"]).unwrap_err();
        assert!(err.0.contains("invalid fault plan"), "{err}");
        let err = parse(&["run", "--fault-plan", "linkdrop=1.5"]).unwrap_err();
        assert!(err.0.contains("invalid fault plan"), "{err}");
        let err = parse(&["run", "--fault-plan", "sinkout=9@0-10"]).unwrap_err();
        assert!(err.0.contains("invalid fault plan"), "{err}");
    }

    #[test]
    fn behaviors_flag_expands_against_the_final_scenario() {
        let Ok(Command::Run(cfg)) = parse(&[
            "run",
            "--behaviors",
            "selfish=0.5",
            "--sensors",
            "10",
            "--sinks",
            "2",
        ]) else {
            panic!("parse failed");
        };
        // 50% of the *overridden* 10 sensors turn selfish, even though the
        // flag came before the --sensors override.
        assert_eq!(cfg.faults.len(), 5);
    }

    #[test]
    fn behaviors_append_after_the_fault_plan() {
        let Ok(Command::Run(cfg)) = parse(&[
            "run",
            "--fault-plan",
            "linkdrop=0.1",
            "--behaviors",
            "blackhole=0.1",
            "--sensors",
            "10",
        ]) else {
            panic!("parse failed");
        };
        // One global link event plus one behavior change, fault plan first.
        assert_eq!(cfg.faults.len(), 2);
    }

    #[test]
    fn behaviors_flag_reaches_compare_too() {
        let Ok(Command::Compare(cfg)) = parse(&["compare", "--behaviors", "liar=0.05"]) else {
            panic!("parse failed");
        };
        assert_eq!(cfg.faults.len(), 5); // 5% of 100 sensors
    }

    #[test]
    fn bad_behavior_specs_are_parse_errors_not_panics() {
        for spec in [
            "gremlin=0.5",
            "selfish=1.5",
            "selfish=0.6;liar=0.6",
            "selfish",
        ] {
            let err = parse(&["run", "--behaviors", spec]).unwrap_err();
            assert!(err.0.contains("invalid behavior spec"), "{spec}: {err}");
        }
    }

    #[test]
    fn behaviors_conflict_with_resume() {
        let err = parse(&["run", "--resume", "c", "--behaviors", "none"]).unwrap_err();
        assert!(err.0.contains("--behaviors"), "{err}");
    }

    #[test]
    fn area_sets_both_dimensions() {
        let Ok(Command::Analyze { scenario }) = parse(&["analyze", "--area", "300"]) else {
            panic!("parse failed");
        };
        assert_eq!(scenario.area_width_m, 300.0);
        assert_eq!(scenario.area_height_m, 300.0);
    }

    #[test]
    fn protocol_is_case_insensitive() {
        for s in ["opt", "OPT", "Opt"] {
            assert_eq!(parse_protocol(s).unwrap(), ProtocolKind::Opt);
        }
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["run", "--protocol", "FOO"])
            .unwrap_err()
            .0
            .contains("unknown protocol"));
        assert!(parse(&["run", "--sensors"])
            .unwrap_err()
            .0
            .contains("needs a value"));
        assert!(parse(&["run", "--sensors", "x"])
            .unwrap_err()
            .0
            .contains("invalid value"));
        assert!(parse(&["frobnicate"])
            .unwrap_err()
            .0
            .contains("unknown command"));
        assert!(parse(&["run", "--wat"])
            .unwrap_err()
            .0
            .contains("unknown flag"));
        assert!(parse(&["run", "--observe"])
            .unwrap_err()
            .0
            .contains("needs a value"));
    }

    #[test]
    fn invalid_scenarios_are_rejected_at_parse_time() {
        let err = parse(&["run", "--sinks", "0"]).unwrap_err();
        assert!(err.0.contains("invalid scenario"), "{err}");
    }

    #[test]
    fn checkpoint_flags_parse() {
        let Ok(Command::Run(cfg)) = parse(&[
            "run",
            "--checkpoint",
            "run.ckpt",
            "--checkpoint-every",
            "500",
        ]) else {
            panic!("parse failed");
        };
        let ckpt = cfg.checkpoint.expect("checkpoint args");
        assert_eq!(ckpt.path, "run.ckpt");
        assert_eq!(ckpt.every_secs, Some(500.0));
        assert!(cfg.resume.is_none());

        // --checkpoint without an interval means signal-only snapshots.
        let Ok(Command::Run(cfg)) = parse(&["run", "--checkpoint", "run.ckpt"]) else {
            panic!("parse failed");
        };
        assert_eq!(cfg.checkpoint.unwrap().every_secs, None);
    }

    #[test]
    fn threads_parse_and_compose_with_resume() {
        let Command::Run(cfg) = parse(&["run", "--threads", "8"]).unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(cfg.threads, 8);
        // A pure execution knob: unlike scenario flags, it must not
        // conflict with --resume.
        let Command::Run(cfg) = parse(&["run", "--resume", "c.ckpt", "--threads", "4"]).unwrap()
        else {
            panic!("expected a run command");
        };
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.resume.as_deref(), Some("c.ckpt"));
        let err = parse(&["run", "--threads", "0"]).unwrap_err();
        assert!(err.0.contains("--threads"), "{err}");
    }

    #[test]
    fn checkpoint_every_requires_a_path() {
        let err = parse(&["run", "--checkpoint-every", "500"]).unwrap_err();
        assert!(err.0.contains("requires --checkpoint"), "{err}");
    }

    #[test]
    fn non_positive_checkpoint_intervals_are_rejected() {
        for s in ["0", "-1", "nan", "inf"] {
            let err = parse(&["run", "--checkpoint", "c", "--checkpoint-every", s]).unwrap_err();
            assert!(
                err.0.contains("--checkpoint-every") || err.0.contains("invalid value"),
                "interval {s}: {err}"
            );
        }
    }

    #[test]
    fn resume_parses_alone_and_with_io_flags() {
        let Ok(Command::Run(cfg)) = parse(&[
            "run",
            "--resume",
            "run.ckpt",
            "--observe",
            "out.jsonl",
            "--checkpoint",
            "run.ckpt",
            "--json",
        ]) else {
            panic!("parse failed");
        };
        assert_eq!(cfg.resume.as_deref(), Some("run.ckpt"));
        assert!(cfg.observe.is_some());
        assert!(cfg.json);
    }

    #[test]
    fn resume_conflicts_with_fresh_run_flags() {
        for flags in [
            &["run", "--resume", "c", "--seed", "2"][..],
            &["run", "--resume", "c", "--protocol", "zbr"],
            &["run", "--resume", "c", "--sensors", "10"],
            &["run", "--resume", "c", "--duration", "100"],
            &["run", "--resume", "c", "--fault-plan", "none"],
            // Order must not matter: the conflict is detected after the
            // whole command line is consumed.
            &["run", "--seed", "2", "--resume", "c"],
        ] {
            let err = parse(flags).unwrap_err();
            assert!(err.0.contains("--resume"), "{flags:?}: {err}");
        }
    }

    #[test]
    fn checkpoint_flags_are_run_only() {
        for flags in [
            &["compare", "--checkpoint", "c"][..],
            &["compare", "--checkpoint-every", "10"],
            &["analyze", "--resume", "c"],
        ] {
            let err = parse(flags).unwrap_err();
            assert!(err.0.contains("only valid for 'run'"), "{flags:?}: {err}");
        }
    }

    #[test]
    fn run_accepts_a_parameterized_policy() {
        let cmd = parse(&["run", "--policy", "twohop:budget=3"]).unwrap();
        match cmd {
            Command::Run(cfg) => {
                assert_eq!(cfg.policy, PolicySpec::TwoHop { budget: 3 });
                assert_eq!(cfg.protocol, ProtocolKind::Opt);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn policy_defaults_to_builtin() {
        match parse(&["run"]).unwrap() {
            Command::Run(cfg) => assert_eq!(cfg.policy, PolicySpec::Builtin),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn compare_shares_the_run_validation_path_for_policy() {
        // --policy combines with --fault-plan on compare exactly as on run…
        let cmd = parse(&[
            "compare",
            "--policy",
            "meetrate:horizon=300,beta=0.5",
            "--fault-plan",
            "linkdrop=0.1",
        ])
        .unwrap();
        match cmd {
            Command::Compare(cfg) => {
                assert_eq!(
                    cfg.policy,
                    PolicySpec::MeetingRate {
                        horizon_secs: 300.0,
                        debounce_secs: MeetingRate::DEFAULT_DEBOUNCE_SECS,
                        beta: 0.5,
                    }
                );
                assert_eq!(cfg.faults.len(), 1);
            }
            other => panic!("wrong command {other:?}"),
        }
        // …and the run-only flags stay rejected with the same taxonomy.
        let err = parse(&["compare", "--policy", "twohop", "--observe", "o.jsonl"]).unwrap_err();
        assert!(err.0.contains("only valid for 'run'"), "{err}");
    }

    #[test]
    fn bad_policies_are_parse_errors_not_panics() {
        for bad in [
            &["run", "--policy", "teleport"][..],
            &["run", "--policy", "twohop:budget=0"],
            &["run", "--policy", "twohop:fuel=3"],
            &["run", "--policy", "meetrate:beta=2.0"],
            &["compare", "--policy", "teleport"],
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.0.contains("invalid policy"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn policy_conflicts_with_an_explicit_protocol() {
        let err = parse(&["run", "--protocol", "zbr", "--policy", "twohop"]).unwrap_err();
        assert!(err.0.contains("--protocol conflicts"), "{err}");
        // Order must not matter, and an explicit builtin policy is fine.
        let err = parse(&["run", "--policy", "meetrate", "--protocol", "opt"]).unwrap_err();
        assert!(err.0.contains("--protocol conflicts"), "{err}");
        assert!(parse(&["run", "--protocol", "zbr", "--policy", "builtin"]).is_ok());
    }

    #[test]
    fn policy_is_a_fresh_run_flag() {
        let err = parse(&["run", "--resume", "c", "--policy", "twohop"]).unwrap_err();
        assert!(err.0.contains("--resume"), "{err}");
    }

    #[test]
    fn analyze_rejects_policy() {
        let err = parse(&["analyze", "--policy", "twohop"]).unwrap_err();
        assert!(err.0.contains("valid"), "{err}");
    }
}
