//! A small, dependency-free argument parser for the `dftmsn` CLI.

use dftmsn_core::faults::FaultPlan;
use dftmsn_core::params::ScenarioParams;
use dftmsn_core::variants::ProtocolKind;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one simulation and print its report.
    Run {
        /// Variant to simulate.
        protocol: ProtocolKind,
        /// Scenario, after applying overrides.
        scenario: ScenarioParams,
        /// Seed.
        seed: u64,
        /// Fault events to inject (empty = fault-free run).
        faults: FaultPlan,
        /// Emit the delivery log as CSV on stdout instead of the summary.
        csv: bool,
        /// Emit the full report as JSON on stdout instead of the summary.
        json: bool,
    },
    /// Run every variant on one scenario and print a comparison table.
    Compare {
        /// Scenario, after applying overrides.
        scenario: ScenarioParams,
        /// Seed.
        seed: u64,
        /// Fault events to inject into every variant's run.
        faults: FaultPlan,
    },
    /// Print the analytic contact/delivery model values for a scenario.
    Analyze {
        /// Scenario, after applying overrides.
        scenario: ScenarioParams,
    },
    /// Print usage.
    Help,
}

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage text.
pub const USAGE: &str = "\
dftmsn — Delay/Fault-Tolerant Mobile Sensor Network simulator (ICDCS 2007)

USAGE:
    dftmsn run      [--protocol OPT|NOOPT|NOSLEEP|ZBR|DIRECT|EPIDEMIC]
                    [scenario flags] [--seed N] [--fault-plan SPEC]
                    [--csv | --json]
    dftmsn compare  [scenario flags] [--seed N] [--fault-plan SPEC]
    dftmsn analyze  [scenario flags]
    dftmsn help

SCENARIO FLAGS (defaults = the paper's Sec. 5 setup):
    --sensors N        number of wearable sensors        (100)
    --sinks N          number of sink nodes              (3)
    --duration SECS    simulated seconds                 (25000)
    --speed-max M/S    maximum node speed                (5)
    --seed N           run seed                          (1)
    --area METERS      square area side                  (150)

FAULT PLAN SPEC (';'-separated directives, e.g. \"crash=0.3;linkdrop=0.2\"):
    none               explicit empty plan
    crash=F            fraction F of sensors suffer battery death
    churn=F@R          fraction F crash, each recovering after R seconds
    linkdrop=P         every frame dropped with probability P
    corrupt=P          received DATA frames corrupted with probability P
    sinkout=I@T1-T2    sink number I (0-based) offline from T1 to T2 secs
";

fn parse_protocol(s: &str) -> Result<ProtocolKind, ParseError> {
    match s.to_ascii_uppercase().as_str() {
        "OPT" => Ok(ProtocolKind::Opt),
        "NOOPT" => Ok(ProtocolKind::NoOpt),
        "NOSLEEP" => Ok(ProtocolKind::NoSleep),
        "ZBR" => Ok(ProtocolKind::Zbr),
        "DIRECT" => Ok(ProtocolKind::Direct),
        "EPIDEMIC" => Ok(ProtocolKind::Epidemic),
        other => Err(ParseError(format!("unknown protocol '{other}'"))),
    }
}

fn take_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<&'a str, ParseError> {
    it.next()
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, ParseError> {
    v.parse()
        .map_err(|_| ParseError(format!("invalid value '{v}' for {flag}")))
}

/// Parses the full argument list (without the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first invalid flag or value.
pub fn parse(args: &[&str]) -> Result<Command, ParseError> {
    let Some((&cmd, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    let mut scenario = ScenarioParams::paper_default();
    let mut protocol = ProtocolKind::Opt;
    let mut seed = 1u64;
    let mut fault_spec: Option<&str> = None;
    let mut csv = false;
    let mut json = false;

    let mut it = rest.iter().copied();
    while let Some(flag) = it.next() {
        match flag {
            "--protocol" => protocol = parse_protocol(take_value(flag, &mut it)?)?,
            "--sensors" => {
                scenario.sensors = parse_num(flag, take_value(flag, &mut it)?)?;
            }
            "--sinks" => {
                scenario.sinks = parse_num(flag, take_value(flag, &mut it)?)?;
            }
            "--duration" => {
                scenario.duration_secs = parse_num(flag, take_value(flag, &mut it)?)?;
            }
            "--speed-max" => {
                scenario.speed_max_mps = parse_num(flag, take_value(flag, &mut it)?)?;
            }
            "--area" => {
                let side: f64 = parse_num(flag, take_value(flag, &mut it)?)?;
                scenario.area_width_m = side;
                scenario.area_height_m = side;
            }
            "--seed" => seed = parse_num(flag, take_value(flag, &mut it)?)?,
            "--fault-plan" => fault_spec = Some(take_value(flag, &mut it)?),
            "--csv" => csv = true,
            "--json" => json = true,
            other => return Err(ParseError(format!("unknown flag '{other}'"))),
        }
    }
    scenario
        .validate()
        .map_err(|e| ParseError(format!("invalid scenario: {e}")))?;
    // The plan is expanded only after every scenario override landed: the
    // node-fraction and sink-ordinal directives target the final topology.
    let faults = match fault_spec {
        Some(spec) => FaultPlan::parse(spec, &scenario, seed)
            .map_err(|e| ParseError(format!("invalid fault plan: {e}")))?,
        None => FaultPlan::default(),
    };

    match cmd {
        "run" => Ok(Command::Run {
            protocol,
            scenario,
            seed,
            faults,
            csv,
            json,
        }),
        "compare" => Ok(Command::Compare {
            scenario,
            seed,
            faults,
        }),
        "analyze" => Ok(Command::Analyze { scenario }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!("unknown command '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_args_mean_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&["help"]), Ok(Command::Help));
        assert_eq!(parse(&["--help"]), Ok(Command::Help));
    }

    #[test]
    fn run_with_overrides() {
        let cmd = parse(&[
            "run",
            "--protocol",
            "zbr",
            "--sensors",
            "40",
            "--sinks",
            "5",
            "--duration",
            "1000",
            "--seed",
            "9",
            "--csv",
        ])
        .unwrap();
        match cmd {
            Command::Run {
                protocol,
                scenario,
                seed,
                faults,
                csv,
                json,
            } => {
                assert_eq!(protocol, ProtocolKind::Zbr);
                assert_eq!(scenario.sensors, 40);
                assert_eq!(scenario.sinks, 5);
                assert_eq!(scenario.duration_secs, 1000);
                assert_eq!(seed, 9);
                assert!(faults.is_empty());
                assert!(csv);
                assert!(!json);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn fault_plan_flag_expands_against_the_final_scenario() {
        let Ok(Command::Run { faults, .. }) = parse(&[
            "run",
            "--fault-plan",
            "crash=0.5;linkdrop=0.25",
            "--sensors",
            "10",
            "--sinks",
            "2",
        ]) else {
            panic!("parse failed");
        };
        // 50% of the *overridden* 10 sensors die, plus one global-link event,
        // even though the flag came before the --sensors override.
        assert_eq!(faults.len(), 6);
    }

    #[test]
    fn fault_plan_flag_reaches_compare_too() {
        let Ok(Command::Compare { faults, .. }) =
            parse(&["compare", "--fault-plan", "linkdrop=0.1"])
        else {
            panic!("parse failed");
        };
        assert_eq!(faults.len(), 1);
    }

    #[test]
    fn bad_fault_plans_are_parse_errors_not_panics() {
        let err = parse(&["run", "--fault-plan", "explode=1"]).unwrap_err();
        assert!(err.0.contains("invalid fault plan"), "{err}");
        let err = parse(&["run", "--fault-plan", "linkdrop=1.5"]).unwrap_err();
        assert!(err.0.contains("invalid fault plan"), "{err}");
        let err = parse(&["run", "--fault-plan", "sinkout=9@0-10"]).unwrap_err();
        assert!(err.0.contains("invalid fault plan"), "{err}");
    }

    #[test]
    fn area_sets_both_dimensions() {
        let Ok(Command::Analyze { scenario }) = parse(&["analyze", "--area", "300"]) else {
            panic!("parse failed");
        };
        assert_eq!(scenario.area_width_m, 300.0);
        assert_eq!(scenario.area_height_m, 300.0);
    }

    #[test]
    fn protocol_is_case_insensitive() {
        for s in ["opt", "OPT", "Opt"] {
            assert_eq!(parse_protocol(s).unwrap(), ProtocolKind::Opt);
        }
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["run", "--protocol", "FOO"])
            .unwrap_err()
            .0
            .contains("unknown protocol"));
        assert!(parse(&["run", "--sensors"])
            .unwrap_err()
            .0
            .contains("needs a value"));
        assert!(parse(&["run", "--sensors", "x"])
            .unwrap_err()
            .0
            .contains("invalid value"));
        assert!(parse(&["frobnicate"])
            .unwrap_err()
            .0
            .contains("unknown command"));
        assert!(parse(&["run", "--wat"])
            .unwrap_err()
            .0
            .contains("unknown flag"));
    }

    #[test]
    fn invalid_scenarios_are_rejected_at_parse_time() {
        let err = parse(&["run", "--sinks", "0"]).unwrap_err();
        assert!(err.0.contains("invalid scenario"), "{err}");
    }
}
