//! The `dftmsn` command-line front end.

mod args;

use args::{parse, Command, USAGE};
use dftmsn_core::analysis::{
    direct_average_ratio, direct_expected_delay, ContactModel, EpidemicModel,
};
use dftmsn_core::faults::FaultPlan;
use dftmsn_core::params::ScenarioParams;
use dftmsn_core::variants::ProtocolKind;
use dftmsn_core::world::Simulation;
use dftmsn_metrics::table::Table;

fn main() {
    let owned: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = owned.iter().map(String::as_str).collect();
    match parse(&refs) {
        Ok(Command::Help) => print!("{USAGE}"),
        Ok(Command::Run {
            protocol,
            scenario,
            seed,
            faults,
            csv,
            json,
        }) => run_one(protocol, scenario, seed, faults, csv, json),
        Ok(Command::Compare {
            scenario,
            seed,
            faults,
        }) => compare(scenario, seed, &faults),
        Ok(Command::Analyze { scenario }) => analyze(&scenario),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn run_one(
    protocol: ProtocolKind,
    scenario: ScenarioParams,
    seed: u64,
    faults: FaultPlan,
    csv: bool,
    json: bool,
) {
    eprintln!(
        "running {protocol} on {} sensors / {} sinks for {} s (seed {seed}, {} fault events)...",
        scenario.sensors,
        scenario.sinks,
        scenario.duration_secs,
        faults.len()
    );
    let report = Simulation::with_faults(scenario, protocol, seed, faults).run();
    if json {
        println!("{}", report.to_json());
        return;
    }
    if csv {
        println!("msg,origin,created_secs,delay_secs,sink");
        for d in &report.deliveries {
            println!(
                "{},{},{},{},{}",
                d.msg.0, d.origin.0, d.created_secs, d.delay_secs, d.sink.0
            );
        }
        return;
    }
    println!("{}", report.summary());
    println!(
        "  delivery ratio   : {:>8.2} %",
        report.delivery_ratio() * 100.0
    );
    println!("  mean delay       : {:>8.0} s", report.mean_delay_secs);
    println!("  p95 delay        : {:>8.0} s", report.p95_delay_secs);
    println!(
        "  avg power        : {:>8.3} mW",
        report.avg_sensor_power_mw
    );
    println!("  attempts         : {:>8}", report.attempts);
    println!("  multicasts       : {:>8}", report.multicasts);
    println!("  copies sent      : {:>8}", report.copies_sent);
    println!("  collisions       : {:>8}", report.collisions);
    println!(
        "  drops (ovf/rej/ftd): {} / {} / {}",
        report.drops_overflow, report.drops_rejected, report.drops_ftd
    );
    println!(
        "  control overhead : {:>8.2} ctrl/data bits",
        report.control_overhead()
    );
    println!("  mean final xi    : {:>8.3}", report.mean_final_xi);
    if report.faults.any() {
        let f = &report.faults;
        println!(
            "  faults           : {} crashes ({} battery), {} recoveries, {} sink outages",
            f.crashes, f.battery_deaths, f.recoveries, f.sink_outages
        );
        println!(
            "  fault losses     : {} queued msgs, {} frames dropped, {} corrupted",
            f.messages_lost_to_crash, f.frames_dropped, f.data_corrupted
        );
        println!(
            "  despite faults   : {:>8} deliveries",
            f.deliveries_despite_faults
        );
    }
}

fn compare(scenario: ScenarioParams, seed: u64, faults: &FaultPlan) {
    let mut table = Table::new(
        "variant comparison",
        &[
            "variant",
            "ratio (%)",
            "power (mW)",
            "delay (s)",
            "collisions",
        ],
    );
    for kind in ProtocolKind::ALL {
        eprintln!("running {kind}...");
        let r = Simulation::with_faults(scenario.clone(), kind, seed, faults.clone()).run();
        table.row(vec![
            kind.label().into(),
            (r.delivery_ratio() * 100.0).into(),
            r.avg_sensor_power_mw.into(),
            r.mean_delay_secs.into(),
            r.collisions.into(),
        ]);
    }
    println!("{}", table.render_text(2));
}

fn analyze(scenario: &ScenarioParams) {
    let contacts = ContactModel::from_scenario(scenario);
    let epidemic = EpidemicModel::from_scenario(scenario);
    let horizon = scenario.duration_secs as f64;
    println!("analytic contact model (well-mixed approximation):");
    println!(
        "  sensor-sensor contact rate : {:.3e} /s  (mean gap {:.0} s)",
        contacts.lambda_node_node,
        contacts.mean_intercontact_nn()
    );
    println!(
        "  sensor-sink contact rate   : {:.3e} /s  (mean gap {:.0} s)",
        contacts.lambda_node_sink,
        contacts.mean_intercontact_ns()
    );
    println!("direct transmission:");
    println!(
        "  expected delay             : {:.0} s",
        direct_expected_delay(contacts.lambda_node_sink, scenario.sinks)
    );
    println!(
        "  avg ratio over a {horizon:.0} s run: {:.1} %",
        direct_average_ratio(contacts.lambda_node_sink, scenario.sinks, horizon) * 100.0
    );
    println!("flooding:");
    println!(
        "  expected delay             : {:.0} s",
        epidemic.expected_delay()
    );
    println!(
        "  P(delivered by {horizon:.0} s)     : {:.1} %",
        epidemic.delivery_probability_by(horizon, 1.0) * 100.0
    );
}
