//! The `dftmsn` command-line front end.

mod args;

use args::{parse, Command, RunConfig, USAGE};
use dftmsn_core::analysis::{
    direct_average_ratio, direct_expected_delay, ContactModel, EpidemicModel,
};
use dftmsn_core::observe::MetricsRecorder;
use dftmsn_core::params::ScenarioParams;
use dftmsn_core::variants::ProtocolKind;
use dftmsn_core::world::Simulation;
use dftmsn_metrics::json::Json;
use dftmsn_metrics::table::Table;
use dftmsn_metrics::viz::{resample, sparkline};
use std::io::BufWriter;

fn main() {
    let owned: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = owned.iter().map(String::as_str).collect();
    match parse(&refs) {
        Ok(Command::Help) => print!("{USAGE}"),
        Ok(Command::Run(cfg)) => run_one(cfg),
        Ok(Command::Compare(cfg)) => compare(&cfg),
        Ok(Command::Inspect {
            path,
            series,
            width,
        }) => inspect(&path, series.as_deref(), width),
        Ok(Command::Analyze { scenario }) => analyze(&scenario),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn run_one(cfg: RunConfig) {
    let RunConfig {
        protocol,
        scenario,
        seed,
        faults,
        observe,
        csv,
        json,
    } = cfg;
    eprintln!(
        "running {protocol} on {} sensors / {} sinks for {} s (seed {seed}, {} fault events)...",
        scenario.sensors,
        scenario.sinks,
        scenario.duration_secs,
        faults.len()
    );
    let mut builder = Simulation::builder(scenario, protocol)
        .seed(seed)
        .faults(faults);
    let mut observing: Option<(MetricsRecorder, String)> = None;
    if let Some(obs) = observe {
        let file = std::fs::File::create(&obs.path)
            .unwrap_or_else(|e| fail(&format!("cannot create '{}': {e}", obs.path)));
        // Streaming-only: windows go straight to the file, memory stays
        // flat however long the run is.
        let recorder = MetricsRecorder::new(obs.window_secs)
            .streaming_only()
            .with_output(Box::new(BufWriter::new(file)));
        builder = builder.observe(recorder.clone());
        observing = Some((recorder, obs.path));
    }
    let report = builder.build().run();
    if let Some((recorder, path)) = observing {
        let (windows, _) = recorder.totals();
        eprintln!("wrote {windows} windows to {path}");
    }
    if json {
        println!("{}", report.to_json());
        return;
    }
    if csv {
        println!("msg,origin,created_secs,delay_secs,sink");
        for d in &report.deliveries {
            println!(
                "{},{},{},{},{}",
                d.msg.0, d.origin.0, d.created_secs, d.delay_secs, d.sink.0
            );
        }
        return;
    }
    println!("{}", report.summary());
    println!(
        "  delivery ratio   : {:>8.2} %",
        report.delivery_ratio() * 100.0
    );
    println!("  mean delay       : {:>8.0} s", report.mean_delay_secs);
    println!("  p95 delay        : {:>8.0} s", report.p95_delay_secs);
    println!(
        "  avg power        : {:>8.3} mW",
        report.avg_sensor_power_mw
    );
    println!("  attempts         : {:>8}", report.attempts);
    println!("  multicasts       : {:>8}", report.multicasts);
    println!("  copies sent      : {:>8}", report.copies_sent);
    println!("  collisions       : {:>8}", report.collisions);
    println!(
        "  drops (ovf/rej/ftd): {} / {} / {}",
        report.drops_overflow, report.drops_rejected, report.drops_ftd
    );
    println!(
        "  control overhead : {:>8.2} ctrl/data bits",
        report.control_overhead()
    );
    println!("  mean final xi    : {:>8.3}", report.mean_final_xi);
    if report.faults.any() {
        let f = &report.faults;
        println!(
            "  faults           : {} crashes ({} battery), {} recoveries, {} sink outages",
            f.crashes, f.battery_deaths, f.recoveries, f.sink_outages
        );
        println!(
            "  fault losses     : {} queued msgs, {} frames dropped, {} corrupted",
            f.messages_lost_to_crash, f.frames_dropped, f.data_corrupted
        );
        println!(
            "  despite faults   : {:>8} deliveries",
            f.deliveries_despite_faults
        );
    }
}

fn compare(cfg: &RunConfig) {
    let mut table = Table::new(
        "variant comparison",
        &[
            "variant",
            "ratio (%)",
            "power (mW)",
            "delay (s)",
            "collisions",
        ],
    );
    for kind in ProtocolKind::ALL {
        eprintln!("running {kind}...");
        let r = Simulation::builder(cfg.scenario.clone(), kind)
            .seed(cfg.seed)
            .faults(cfg.faults.clone())
            .build()
            .run();
        table.row(vec![
            kind.label().into(),
            (r.delivery_ratio() * 100.0).into(),
            r.avg_sensor_power_mw.into(),
            r.mean_delay_secs.into(),
            r.collisions.into(),
        ]);
    }
    println!("{}", table.render_text(2));
}

/// The series `inspect` can extract from an observation file: top-level
/// counter fields plus per-snapshot gauges.
const COUNTER_SERIES: &[&str] = &[
    "deliveries",
    "drops_overflow",
    "drops_rejected",
    "drops_ftd",
    "collisions",
    "frames_sent",
    "frame_deliveries",
    "control_bits",
    "data_bits",
    "sleeps",
    "sleep_secs",
    "faults",
];
const SNAPSHOT_SERIES: &[&str] = &[
    "queue_mean",
    "queue_max",
    "xi_mean",
    "xi_min",
    "xi_max",
    "asleep_fraction",
    "energy_j",
];

/// `(t1, value)` points of one named series across the window rows.
fn extract(rows: &[Json], name: &str) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for row in rows {
        let Some(t) = row.get("t1").and_then(Json::as_f64) else {
            continue;
        };
        let value = if SNAPSHOT_SERIES.contains(&name) {
            row.get("snapshot")
                .and_then(|s| s.get(name))
                .and_then(Json::as_f64)
        } else {
            row.get(name).and_then(Json::as_f64)
        };
        if let Some(v) = value {
            out.push((t, v));
        }
    }
    out
}

fn load_observe_file(path: &str) -> (Json, Vec<Json>, Option<Json>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read '{path}': {e}")));
    let mut header: Option<Json> = None;
    let mut totals: Option<Json> = None;
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(line).unwrap_or_else(|e| fail(&format!("{path}:{}: {e}", i + 1)));
        if let Some(schema) = j.get("schema").and_then(Json::as_str) {
            if schema != dftmsn_core::observe::SCHEMA {
                fail(&format!(
                    "'{path}' has schema '{schema}', expected '{}'",
                    dftmsn_core::observe::SCHEMA
                ));
            }
            header = Some(j);
        } else if j.get("totals").and_then(Json::as_bool) == Some(true) {
            totals = Some(j);
        } else {
            rows.push(j);
        }
    }
    let Some(header) = header else {
        fail(&format!(
            "'{path}' has no '{}' header line — not an observation file?",
            dftmsn_core::observe::SCHEMA
        ));
    };
    (header, rows, totals)
}

fn inspect(path: &str, series: Option<&str>, width: usize) {
    let (header, rows, totals) = load_observe_file(path);

    let protocol = header.get("protocol").and_then(Json::as_str).unwrap_or("?");
    let window = header
        .get("window_secs")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let seed = header.get("seed").and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "{path}: {} windows of {window} s ({protocol}, seed {seed}){}",
        rows.len(),
        if totals.is_some() {
            ""
        } else {
            " — no totals line; run incomplete?"
        },
    );

    if let Some(name) = series {
        inspect_series(&rows, name, width);
        return;
    }

    if rows.is_empty() {
        // A run shorter than one window writes only the header (and
        // possibly totals); render the empty table rather than erroring so
        // scripted pipelines see a well-formed summary.
        println!("no complete windows recorded (run shorter than one window?)");
    }
    let mut table = Table::new("series", &["series", "min", "mean", "max", "last", "trend"]);
    for name in COUNTER_SERIES.iter().chain(SNAPSHOT_SERIES) {
        let points = extract(&rows, name);
        if points.is_empty() {
            continue;
        }
        let values: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        table.row(vec![
            (*name).into(),
            min.into(),
            mean.into(),
            max.into(),
            values[values.len() - 1].into(),
            sparkline(&resample(&values, width)).into(),
        ]);
    }
    println!("{}", table.render_text(2));
    println!("use --series NAME for per-window values of one series");
}

fn inspect_series(rows: &[Json], name: &str, width: usize) {
    let points = extract(rows, name);
    if points.is_empty() {
        let known: Vec<&str> = COUNTER_SERIES
            .iter()
            .chain(SNAPSHOT_SERIES)
            .copied()
            .collect();
        fail(&format!(
            "no data for series '{name}' (known series: {})",
            known.join(", ")
        ));
    }
    let values: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
    println!("{name}: {}", sparkline(&resample(&values, width)));
    let mut table = Table::new(name, &["t (s)", name]);
    for (t, v) in points {
        table.row(vec![t.into(), v.into()]);
    }
    println!("{}", table.render_text(3));
}

fn analyze(scenario: &ScenarioParams) {
    let contacts = ContactModel::from_scenario(scenario);
    let epidemic = EpidemicModel::from_scenario(scenario);
    let horizon = scenario.duration_secs as f64;
    println!("analytic contact model (well-mixed approximation):");
    println!(
        "  sensor-sensor contact rate : {:.3e} /s  (mean gap {:.0} s)",
        contacts.lambda_node_node,
        contacts.mean_intercontact_nn()
    );
    println!(
        "  sensor-sink contact rate   : {:.3e} /s  (mean gap {:.0} s)",
        contacts.lambda_node_sink,
        contacts.mean_intercontact_ns()
    );
    println!("direct transmission:");
    println!(
        "  expected delay             : {:.0} s",
        direct_expected_delay(contacts.lambda_node_sink, scenario.sinks)
    );
    println!(
        "  avg ratio over a {horizon:.0} s run: {:.1} %",
        direct_average_ratio(contacts.lambda_node_sink, scenario.sinks, horizon) * 100.0
    );
    println!("flooding:");
    println!(
        "  expected delay             : {:.0} s",
        epidemic.expected_delay()
    );
    println!(
        "  P(delivered by {horizon:.0} s)     : {:.1} %",
        epidemic.delivery_probability_by(horizon, 1.0) * 100.0
    );
}
