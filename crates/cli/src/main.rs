//! The `dftmsn` command-line front end.
//!
//! Every failure path funnels through [`CliError`], so each class of
//! problem maps to a distinct, documented exit code (see `USAGE`):
//! usage errors exit 2, I/O failures 3, corrupt checkpoint or observation
//! files 4, and interrupted runs 128+signal after writing a final
//! checkpoint and flushing the partial report.

mod args;

use args::{parse, CheckpointArgs, Command, RunConfig, USAGE};
use dftmsn_core::analysis::{
    direct_average_ratio, direct_expected_delay, ContactModel, EpidemicModel,
};
use dftmsn_core::observe::MetricsRecorder;
use dftmsn_core::params::ScenarioParams;
use dftmsn_core::policy::PolicySpec;
use dftmsn_core::report::SimReport;
use dftmsn_core::variants::ProtocolKind;
use dftmsn_core::world::{CkptError, Simulation};
use dftmsn_metrics::json::Json;
use dftmsn_metrics::table::Table;
use dftmsn_metrics::viz::{resample, sparkline};
use dftmsn_sim::time::SimDuration;
use std::io::{BufWriter, Seek, SeekFrom};
use std::path::Path;

/// Anything that can go wrong after argument parsing succeeded.
#[derive(Debug)]
enum CliError {
    /// A filesystem operation failed.
    Io {
        /// What was being attempted.
        op: &'static str,
        /// The file involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Checkpoint write/read/resume failed.
    Ckpt(CkptError),
    /// An input file parsed but its contents are unusable (wrong schema,
    /// missing header, cursor past end of file).
    Data(String),
}

impl CliError {
    /// The process exit code this error maps to (documented in `USAGE`).
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Io { .. } => 3,
            CliError::Ckpt(e) if e.is_corrupt() => 4,
            CliError::Ckpt(_) => 3,
            CliError::Data(_) => 4,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Io { op, path, source } => write!(f, "{op} '{path}': {source}"),
            CliError::Ckpt(e) => write!(f, "{e}"),
            CliError::Data(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Ckpt(e) => Some(e),
            CliError::Data(_) => None,
        }
    }
}

impl From<CkptError> for CliError {
    fn from(e: CkptError) -> Self {
        CliError::Ckpt(e)
    }
}

/// Async-signal handling: the handler only stores the signal number; the
/// run loop polls it between events and performs the orderly shutdown
/// (final checkpoint + partial report) on the main thread.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicI32, Ordering};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    static PENDING: AtomicI32 = AtomicI32::new(0);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        PENDING.store(signum, Ordering::Relaxed);
    }

    /// Installs SIGINT/SIGTERM handlers; call once before the run loop.
    pub fn install() {
        // SAFETY: signal(2) with a handler that only performs an atomic
        // store — the narrow async-signal-safe idiom.
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// The signal received since `install`, if any.
    pub fn pending() -> Option<i32> {
        match PENDING.load(Ordering::Relaxed) {
            0 => None,
            s => Some(s),
        }
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
    pub fn pending() -> Option<i32> {
        None
    }
}

fn main() {
    let owned: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = owned.iter().map(String::as_str).collect();
    let code = match parse(&refs) {
        Ok(Command::Help) => {
            print!("{USAGE}");
            0
        }
        Ok(cmd) => match dispatch(cmd) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                e.exit_code()
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

fn dispatch(cmd: Command) -> Result<i32, CliError> {
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            Ok(0)
        }
        Command::Run(cfg) => run_one(cfg),
        Command::Compare(cfg) => {
            compare(&cfg);
            Ok(0)
        }
        Command::Inspect {
            path,
            series,
            width,
        } => {
            inspect(&path, series.as_deref(), width)?;
            Ok(0)
        }
        Command::Analyze { scenario } => {
            analyze(&scenario);
            Ok(0)
        }
    }
}

/// The observer handle kept alongside a running simulation so the CLI can
/// report how many windows went to which file once the run ends.
struct Observing {
    recorder: MetricsRecorder,
    path: String,
}

/// Builds a fresh simulation from the parsed flags (the non-`--resume`
/// path), attaching the observer when requested.
fn build_fresh(cfg: &RunConfig) -> Result<(Simulation, Option<Observing>), CliError> {
    let what = match cfg.policy {
        PolicySpec::Builtin => cfg.protocol.to_string(),
        other => format!("policy {}", other.label()),
    };
    eprintln!(
        "running {} on {} sensors / {} sinks for {} s (seed {}, {} fault events)...",
        what,
        cfg.scenario.sensors,
        cfg.scenario.sinks,
        cfg.scenario.duration_secs,
        cfg.seed,
        cfg.faults.len()
    );
    let mut builder = Simulation::builder(cfg.scenario.clone(), cfg.protocol)
        .seed(cfg.seed)
        .policy(cfg.policy)
        .threads(cfg.threads)
        .faults(cfg.faults.clone());
    let mut observing = None;
    if let Some(obs) = &cfg.observe {
        let file = std::fs::File::create(&obs.path).map_err(|e| CliError::Io {
            op: "cannot create",
            path: obs.path.clone(),
            source: e,
        })?;
        // Streaming-only: windows go straight to the file, memory stays
        // flat however long the run is. With checkpointing enabled the
        // file is written unbuffered so that at every event boundary its
        // length equals the recorder's byte cursor — the invariant the
        // resume path truncates back to.
        let recorder = MetricsRecorder::new(obs.window_secs).streaming_only();
        let recorder = if cfg.checkpoint.is_some() {
            recorder.with_output(Box::new(file))
        } else {
            recorder.with_output(Box::new(BufWriter::new(file)))
        };
        builder = builder.observe(recorder.clone());
        observing = Some(Observing {
            recorder,
            path: obs.path.clone(),
        });
    }
    Ok((builder.build(), observing))
}

/// Reconstructs a simulation from a checkpoint file (the `--resume` path)
/// and re-attaches the observer's output stream byte-exactly.
fn build_resumed(
    cfg: &RunConfig,
    ckpt_path: &str,
) -> Result<(Simulation, Option<Observing>), CliError> {
    let resumed = Simulation::resume(Path::new(ckpt_path))?;
    if resumed.from_backup {
        eprintln!("warning: '{ckpt_path}' was corrupt; resumed from its .bak rotation instead");
    }
    let mut sim = resumed.sim;
    // The thread count is never serialized; re-apply the flag on resume.
    sim.set_threads(cfg.threads);
    eprintln!(
        "resumed from '{ckpt_path}' at t = {:.0} s",
        sim.now().as_secs_f64()
    );
    let observing = match (resumed.recorder, &cfg.observe) {
        (Some(recorder), Some(obs)) => {
            // The snapshot's byte cursor marks how much JSONL the
            // interrupted run had durably written; anything after it is a
            // window the resumed run will re-emit, so truncate and append.
            let cursor = recorder.bytes_written();
            let mut file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&obs.path)
                .map_err(|e| CliError::Io {
                    op: "cannot reopen observe file",
                    path: obs.path.clone(),
                    source: e,
                })?;
            let len = file
                .metadata()
                .map_err(|e| CliError::Io {
                    op: "cannot stat observe file",
                    path: obs.path.clone(),
                    source: e,
                })?
                .len();
            if len < cursor {
                return Err(CliError::Data(format!(
                    "observe file '{}' holds {len} bytes but the checkpoint's \
                     cursor is {cursor} — wrong file, or it lost data",
                    obs.path
                )));
            }
            file.set_len(cursor).map_err(|e| CliError::Io {
                op: "cannot truncate observe file",
                path: obs.path.clone(),
                source: e,
            })?;
            file.seek(SeekFrom::End(0)).map_err(|e| CliError::Io {
                op: "cannot seek observe file",
                path: obs.path.clone(),
                source: e,
            })?;
            // `with_output` mutates the shared recorder the simulation
            // already observes through, so this re-attaches the stream for
            // both handles.
            let recorder = recorder.with_output(Box::new(file));
            Some(Observing {
                recorder,
                path: obs.path.clone(),
            })
        }
        (Some(_), None) => {
            eprintln!(
                "warning: the checkpoint carries an observer; pass the original \
                 --observe FILE to continue its JSONL stream (windows from here \
                 on are otherwise dropped)"
            );
            None
        }
        (None, Some(_)) => {
            eprintln!(
                "warning: --observe ignored: the checkpointed run had no \
                 observer attached"
            );
            None
        }
        (None, None) => None,
    };
    Ok((sim, observing))
}

fn run_one(cfg: RunConfig) -> Result<i32, CliError> {
    let (mut sim, observing) = match &cfg.resume {
        Some(path) => build_resumed(&cfg, path)?,
        None => build_fresh(&cfg)?,
    };
    signals::install();

    let every = cfg
        .checkpoint
        .as_ref()
        .and_then(|c| c.every_secs)
        .map(SimDuration::from_secs_f64);
    let mut next_ckpt = every.map(|d| sim.now() + d);

    let interrupted = loop {
        if let Some(sig) = signals::pending() {
            break Some(sig);
        }
        // `advance` is the parallel-aware unit of work (one event
        // sequentially, one interval with threads > 1); every boundary
        // remains a valid checkpoint/signal instant.
        if !sim.advance() {
            break None;
        }
        if let (Some(at), Some(ckpt)) = (next_ckpt, &cfg.checkpoint) {
            if sim.now() >= at {
                write_checkpoint(&mut sim, ckpt)?;
                // Schedule from the checkpoint instant, not `at`: a burst
                // of simulated time must not trigger a burst of writes.
                next_ckpt = every.map(|d| sim.now() + d);
            }
        }
    };

    if let Some(sig) = interrupted {
        let now = sim.now();
        eprintln!(
            "interrupted by signal {sig} at t = {:.0} s",
            now.as_secs_f64()
        );
        if let Some(ckpt) = &cfg.checkpoint {
            write_checkpoint(&mut sim, ckpt)?;
            eprintln!(
                "final checkpoint written; resume with: dftmsn run --resume {}",
                ckpt.path
            );
        }
        // Flush what the run produced so far: the partial report plus the
        // observer's pending window and totals line.
        let report = sim.finish_partial();
        report_observing(observing.as_ref());
        eprintln!(
            "partial report (run covered {:.0} s):",
            report.duration_secs
        );
        print_report(&cfg, &report);
        return Ok(128 + sig);
    }

    let report = sim.run();
    report_observing(observing.as_ref());
    print_report(&cfg, &report);
    Ok(0)
}

fn write_checkpoint(sim: &mut Simulation, ckpt: &CheckpointArgs) -> Result<(), CliError> {
    sim.checkpoint(Path::new(&ckpt.path))?;
    eprintln!(
        "checkpoint written to '{}' at t = {:.0} s",
        ckpt.path,
        sim.now().as_secs_f64()
    );
    Ok(())
}

fn report_observing(observing: Option<&Observing>) {
    if let Some(obs) = observing {
        let (windows, _) = obs.recorder.totals();
        eprintln!("wrote {windows} windows to {}", obs.path);
    }
}

fn print_report(cfg: &RunConfig, report: &SimReport) {
    if cfg.json {
        println!("{}", report.to_json());
        return;
    }
    if cfg.csv {
        println!("msg,origin,created_secs,delay_secs,sink");
        for d in &report.deliveries {
            println!(
                "{},{},{},{},{}",
                d.msg.0, d.origin.0, d.created_secs, d.delay_secs, d.sink.0
            );
        }
        return;
    }
    println!("{}", report.summary());
    println!(
        "  delivery ratio   : {:>8.2} %",
        report.delivery_ratio() * 100.0
    );
    println!("  mean delay       : {:>8.0} s", report.mean_delay_secs);
    println!("  p95 delay        : {:>8.0} s", report.p95_delay_secs);
    println!(
        "  avg power        : {:>8.3} mW",
        report.avg_sensor_power_mw
    );
    println!("  attempts         : {:>8}", report.attempts);
    println!("  multicasts       : {:>8}", report.multicasts);
    println!("  copies sent      : {:>8}", report.copies_sent);
    println!("  collisions       : {:>8}", report.collisions);
    println!(
        "  drops (ovf/rej/ftd): {} / {} / {}",
        report.drops_overflow, report.drops_rejected, report.drops_ftd
    );
    println!(
        "  control overhead : {:>8.2} ctrl/data bits",
        report.control_overhead()
    );
    println!("  mean final xi    : {:>8.3}", report.mean_final_xi);
    if report.faults.any() {
        let f = &report.faults;
        println!(
            "  faults           : {} crashes ({} battery), {} recoveries, {} sink outages",
            f.crashes, f.battery_deaths, f.recoveries, f.sink_outages
        );
        println!(
            "  fault losses     : {} queued msgs, {} frames dropped, {} corrupted",
            f.messages_lost_to_crash, f.frames_dropped, f.data_corrupted
        );
        println!(
            "  despite faults   : {:>8} deliveries",
            f.deliveries_despite_faults
        );
        if f.behavior_changes > 0 {
            println!(
                "  adversaries      : {} behavior changes, {} copies captured",
                f.behavior_changes, f.copies_captured
            );
            println!(
                "  adversary frames : {} forged ({} detected), {} lied adverts",
                f.forged_frames, f.forged_detected, f.lied_advertisements
            );
        }
    }
    let l = &report.lifetime;
    if l.first_death_secs.is_some() {
        let fmt = |v: Option<f64>| match v {
            Some(t) => format!("{t:.0}s"),
            None => "-".into(),
        };
        println!(
            "  lifetime         : FND {} / HND {} / LND {}, {} alive at end",
            fmt(l.first_death_secs),
            fmt(l.half_death_secs),
            fmt(l.last_death_secs),
            l.alive_at_end
        );
    }
}

fn compare(cfg: &RunConfig) {
    let mut table = Table::new(
        "variant comparison",
        &[
            "variant",
            "ratio (%)",
            "power (mW)",
            "delay (s)",
            "collisions",
        ],
    );
    let mut row = |label: &str, r: &SimReport| {
        table.row(vec![
            label.into(),
            (r.delivery_ratio() * 100.0).into(),
            r.avg_sensor_power_mw.into(),
            r.mean_delay_secs.into(),
            r.collisions.into(),
        ]);
    };
    for kind in ProtocolKind::ALL {
        eprintln!("running {kind}...");
        let r = Simulation::builder(cfg.scenario.clone(), kind)
            .seed(cfg.seed)
            .faults(cfg.faults.clone())
            .build()
            .run();
        row(kind.label(), &r);
    }
    // A non-builtin --policy joins the panel as a seventh row, run on the
    // OPT base configuration so its MAC knobs match the strongest builtin.
    if cfg.policy != PolicySpec::Builtin {
        eprintln!("running policy {}...", cfg.policy.label());
        let r = Simulation::builder(cfg.scenario.clone(), ProtocolKind::Opt)
            .seed(cfg.seed)
            .policy(cfg.policy)
            .faults(cfg.faults.clone())
            .build()
            .run();
        row(cfg.policy.label(), &r);
    }
    println!("{}", table.render_text(2));
}

/// The series `inspect` can extract from an observation file: top-level
/// counter fields plus per-snapshot gauges.
const COUNTER_SERIES: &[&str] = &[
    "deliveries",
    "drops_overflow",
    "drops_rejected",
    "drops_ftd",
    "collisions",
    "frames_sent",
    "frame_deliveries",
    "control_bits",
    "data_bits",
    "sleeps",
    "sleep_secs",
    "faults",
];
const SNAPSHOT_SERIES: &[&str] = &[
    "queue_mean",
    "queue_max",
    "xi_mean",
    "xi_min",
    "xi_max",
    "asleep_fraction",
    "energy_j",
    "alive_nodes",
];

/// `(t1, value)` points of one named series across the window rows.
fn extract(rows: &[Json], name: &str) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for row in rows {
        let Some(t) = row.get("t1").and_then(Json::as_f64) else {
            continue;
        };
        let value = if SNAPSHOT_SERIES.contains(&name) {
            row.get("snapshot")
                .and_then(|s| s.get(name))
                .and_then(Json::as_f64)
        } else {
            row.get(name).and_then(Json::as_f64)
        };
        if let Some(v) = value {
            out.push((t, v));
        }
    }
    out
}

/// Loads an observation file, tolerating corrupt or truncated lines: an
/// interrupted run (or a crash mid-write) may leave a torn trailing line,
/// which should not make the rest of the file unreadable. Every skipped
/// line is reported on stderr; only a missing/foreign header is fatal.
fn load_observe_file(path: &str) -> Result<(Json, Vec<Json>, Option<Json>), CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io {
        op: "cannot read",
        path: path.to_owned(),
        source: e,
    })?;
    let mut header: Option<Json> = None;
    let mut totals: Option<Json> = None;
    let mut rows = Vec::new();
    let mut skipped = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = match Json::parse(line) {
            Ok(j) => j,
            Err(e) => {
                skipped += 1;
                eprintln!("warning: {path}:{}: skipping unparseable line ({e})", i + 1);
                continue;
            }
        };
        if let Some(schema) = j.get("schema").and_then(Json::as_str) {
            if schema != dftmsn_core::observe::SCHEMA {
                return Err(CliError::Data(format!(
                    "'{path}' has schema '{schema}', expected '{}'",
                    dftmsn_core::observe::SCHEMA
                )));
            }
            header = Some(j);
        } else if j.get("totals").and_then(Json::as_bool) == Some(true) {
            totals = Some(j);
        } else {
            rows.push(j);
        }
    }
    if skipped > 0 {
        eprintln!(
            "warning: {path}: skipped {skipped} corrupt line(s) — interrupted \
             run or torn write; rendering the {} windows that parsed",
            rows.len()
        );
    }
    let Some(header) = header else {
        return Err(CliError::Data(format!(
            "'{path}' has no '{}' header line — not an observation file?",
            dftmsn_core::observe::SCHEMA
        )));
    };
    Ok((header, rows, totals))
}

fn inspect(path: &str, series: Option<&str>, width: usize) -> Result<(), CliError> {
    let (header, rows, totals) = load_observe_file(path)?;

    let protocol = header.get("protocol").and_then(Json::as_str).unwrap_or("?");
    let window = header
        .get("window_secs")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let seed = header.get("seed").and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "{path}: {} windows of {window} s ({protocol}, seed {seed}){}",
        rows.len(),
        if totals.is_some() {
            ""
        } else {
            " — no totals line; run incomplete?"
        },
    );

    if let Some(name) = series {
        return inspect_series(&rows, name, width);
    }

    if rows.is_empty() {
        // A run shorter than one window writes only the header (and
        // possibly totals); render the empty table rather than erroring so
        // scripted pipelines see a well-formed summary.
        println!("no complete windows recorded (run shorter than one window?)");
    }
    let mut table = Table::new("series", &["series", "min", "mean", "max", "last", "trend"]);
    for name in COUNTER_SERIES.iter().chain(SNAPSHOT_SERIES) {
        let points = extract(&rows, name);
        if points.is_empty() {
            continue;
        }
        let values: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        table.row(vec![
            (*name).into(),
            min.into(),
            mean.into(),
            max.into(),
            values[values.len() - 1].into(),
            sparkline(&resample(&values, width)).into(),
        ]);
    }
    println!("{}", table.render_text(2));
    println!("use --series NAME for per-window values of one series");
    Ok(())
}

fn inspect_series(rows: &[Json], name: &str, width: usize) -> Result<(), CliError> {
    let points = extract(rows, name);
    if points.is_empty() {
        let known: Vec<&str> = COUNTER_SERIES
            .iter()
            .chain(SNAPSHOT_SERIES)
            .copied()
            .collect();
        return Err(CliError::Data(format!(
            "no data for series '{name}' (known series: {})",
            known.join(", ")
        )));
    }
    let values: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
    println!("{name}: {}", sparkline(&resample(&values, width)));
    let mut table = Table::new(name, &["t (s)", name]);
    for (t, v) in points {
        table.row(vec![t.into(), v.into()]);
    }
    println!("{}", table.render_text(3));
    Ok(())
}

fn analyze(scenario: &ScenarioParams) {
    let contacts = ContactModel::from_scenario(scenario);
    let epidemic = EpidemicModel::from_scenario(scenario);
    let horizon = scenario.duration_secs as f64;
    println!("analytic contact model (well-mixed approximation):");
    println!(
        "  sensor-sensor contact rate : {:.3e} /s  (mean gap {:.0} s)",
        contacts.lambda_node_node,
        contacts.mean_intercontact_nn()
    );
    println!(
        "  sensor-sink contact rate   : {:.3e} /s  (mean gap {:.0} s)",
        contacts.lambda_node_sink,
        contacts.mean_intercontact_ns()
    );
    println!("direct transmission:");
    println!(
        "  expected delay             : {:.0} s",
        direct_expected_delay(contacts.lambda_node_sink, scenario.sinks)
    );
    println!(
        "  avg ratio over a {horizon:.0} s run: {:.1} %",
        direct_average_ratio(contacts.lambda_node_sink, scenario.sinks, horizon) * 100.0
    );
    println!("flooding:");
    println!(
        "  expected delay             : {:.0} s",
        epidemic.expected_delay()
    );
    println!(
        "  P(delivered by {horizon:.0} s)     : {:.1} %",
        epidemic.delivery_probability_by(horizon, 1.0) * 100.0
    );
}
