//! End-to-end fault-injection behavior through the public facade: an empty
//! plan is a perfect no-op, a non-empty plan is deterministic per seed, and
//! each fault class shows up in the counters it claims to drive.

use dftmsn::prelude::*;

fn scenario() -> ScenarioParams {
    ScenarioParams::paper_default()
        .with_sensors(16)
        .with_sinks(2)
        .with_duration_secs(800)
}

/// The eight-counter fingerprint the golden determinism suite also uses.
fn fingerprint(r: &SimReport) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.generated,
        r.delivered,
        r.sink_receptions,
        r.frames_sent,
        r.collisions,
        r.attempts,
        r.multicasts,
        r.copies_sent,
    )
}

#[test]
fn empty_plan_is_bit_identical_to_a_plain_run() {
    for kind in [ProtocolKind::Opt, ProtocolKind::Zbr, ProtocolKind::Epidemic] {
        let plain = Simulation::builder(scenario(), kind).seed(7).build().run();
        let with_plan = Simulation::builder(scenario(), kind)
            .seed(7)
            .faults(FaultPlan::default())
            .build()
            .run();
        assert_eq!(fingerprint(&plain), fingerprint(&with_plan), "{kind}");
        assert!(!with_plan.faults.any(), "{kind}: quiet run counted faults");
    }
}

#[test]
fn same_seed_and_plan_reproduce_the_same_report() {
    let plan = FaultPlan::parse("crash=0.25;linkdrop=0.1", &scenario(), 7).unwrap();
    let a = Simulation::builder(scenario(), ProtocolKind::Opt)
        .seed(7)
        .faults(plan.clone())
        .build()
        .run();
    let b = Simulation::builder(scenario(), ProtocolKind::Opt)
        .seed(7)
        .faults(plan)
        .build()
        .run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.mean_delay_secs.to_bits(), b.mean_delay_secs.to_bits());
}

#[test]
fn crashes_register_in_the_fault_counters() {
    let plan = FaultPlan::parse("crash=0.5", &scenario(), 7).unwrap();
    let r = Simulation::builder(scenario(), ProtocolKind::Opt)
        .seed(7)
        .faults(plan)
        .build()
        .run();
    assert_eq!(r.faults.crashes, 8, "half of 16 sensors");
    assert_eq!(r.faults.battery_deaths, 8);
    assert_eq!(r.faults.recoveries, 0);
}

#[test]
fn total_link_loss_delivers_nothing() {
    let plan = FaultPlan::parse("linkdrop=1.0", &scenario(), 7).unwrap();
    let r = Simulation::builder(scenario(), ProtocolKind::Opt)
        .seed(7)
        .faults(plan)
        .build()
        .run();
    assert_eq!(r.delivered, 0);
    assert!(r.generated > 0, "sensing itself must continue");
    assert!(r.faults.frames_dropped > 0);
}

#[test]
fn total_corruption_blocks_data_but_leaves_control_alive() {
    let plan = FaultPlan::parse("corrupt=1.0", &scenario(), 7).unwrap();
    let r = Simulation::builder(scenario(), ProtocolKind::Opt)
        .seed(7)
        .faults(plan)
        .build()
        .run();
    assert_eq!(r.delivered, 0, "no DATA frame survives");
    assert!(r.faults.data_corrupted > 0);
    assert!(
        r.frames_sent > 0,
        "RTS/CTS handshakes still run under corruption"
    );
}

#[test]
fn faults_degrade_but_rarely_destroy_delivery() {
    let quiet = Simulation::builder(scenario(), ProtocolKind::Opt)
        .seed(7)
        .build()
        .run();
    let plan = FaultPlan::parse("crash=0.3", &scenario(), 7).unwrap();
    let faulty = Simulation::builder(scenario(), ProtocolKind::Opt)
        .seed(7)
        .faults(plan)
        .build()
        .run();
    assert!(
        faulty.delivery_ratio() <= quiet.delivery_ratio() + 0.05,
        "losing 30% of sensors should not help: {} vs {}",
        faulty.delivery_ratio(),
        quiet.delivery_ratio()
    );
    assert!(
        faulty.faults.deliveries_despite_faults > 0,
        "the surviving network still delivers"
    );
}
