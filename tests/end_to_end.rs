//! End-to-end integration tests: whole simulations across all five
//! crates, checking global invariants and the qualitative behaviours the
//! paper reports.

use dftmsn::prelude::*;

fn small(sensors: usize, sinks: usize, secs: u64) -> ScenarioParams {
    ScenarioParams::paper_default()
        .with_sensors(sensors)
        .with_sinks(sinks)
        .with_duration_secs(secs)
}

#[test]
fn report_invariants_hold_for_every_variant() {
    for kind in ProtocolKind::ALL {
        let r = Simulation::builder(small(15, 2, 600), kind)
            .seed(1)
            .build()
            .run();
        assert!(r.delivered <= r.generated, "{kind}: delivered > generated");
        assert!(
            r.sink_receptions >= r.delivered,
            "{kind}: fewer receptions than unique deliveries"
        );
        assert!(r.delivery_ratio() <= 1.0);
        assert!(r.mean_delay_secs >= 0.0);
        assert!(r.mean_delay_secs <= r.duration_secs);
        assert!(r.total_sensor_energy_j > 0.0, "{kind}: no energy consumed");
        // Power can never exceed continuous transmit power.
        assert!(
            r.avg_sensor_power_mw <= 24.75 + 1.0,
            "{kind}: impossible power {}",
            r.avg_sensor_power_mw
        );
        assert!(r.copies_sent >= r.multicasts, "{kind}: copies < multicasts");
        assert!(
            (0.0..=1.0).contains(&r.mean_final_xi),
            "{kind}: ξ out of range"
        );
    }
}

#[test]
fn identical_seeds_reproduce_bitwise() {
    for kind in [ProtocolKind::Opt, ProtocolKind::Zbr] {
        let a = Simulation::builder(small(20, 2, 800), kind)
            .seed(99)
            .build()
            .run();
        let b = Simulation::builder(small(20, 2, 800), kind)
            .seed(99)
            .build()
            .run();
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.sink_receptions, b.sink_receptions);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.collisions, b.collisions);
        assert_eq!(a.attempts, b.attempts);
        assert!((a.total_sensor_energy_j - b.total_sensor_energy_j).abs() < 1e-9);
        assert!((a.mean_delay_secs - b.mean_delay_secs).abs() < 1e-9);
    }
}

#[test]
fn more_sinks_deliver_more() {
    // The paper's headline trend (Fig. 2a): averaged over a few seeds to
    // damp run-to-run noise.
    let ratio = |sinks: usize| -> f64 {
        (0..3)
            .map(|seed| {
                Simulation::builder(small(40, sinks, 2_000), ProtocolKind::Opt)
                    .seed(seed)
                    .build()
                    .run()
                    .delivery_ratio()
            })
            .sum::<f64>()
            / 3.0
    };
    let one = ratio(1);
    let six = ratio(6);
    assert!(
        six > one,
        "6 sinks should beat 1 sink: {six:.3} vs {one:.3}"
    );
}

#[test]
fn nosleep_power_approximates_idle_listening() {
    let r = Simulation::builder(small(15, 2, 600), ProtocolKind::NoSleep)
        .seed(4)
        .build()
        .run();
    // Idle listening is 13.5 mW; transmissions push the average a bit up,
    // receptions keep it equal. Expect within [13, 16] mW.
    assert!(
        (13.0..16.0).contains(&r.avg_sensor_power_mw),
        "NOSLEEP power {} mW",
        r.avg_sensor_power_mw
    );
}

#[test]
fn sleeping_variants_use_far_less_energy() {
    let opt = Simulation::builder(small(15, 2, 600), ProtocolKind::Opt)
        .seed(4)
        .build()
        .run();
    let nosleep = Simulation::builder(small(15, 2, 600), ProtocolKind::NoSleep)
        .seed(4)
        .build()
        .run();
    assert!(opt.avg_sensor_power_mw < nosleep.avg_sensor_power_mw / 3.0);
}

#[test]
fn direct_sends_single_copies_only() {
    let r = Simulation::builder(small(20, 3, 1_000), ProtocolKind::Direct)
        .seed(5)
        .build()
        .run();
    // Every DIRECT multicast targets exactly one receiver (a sink).
    assert_eq!(r.copies_sent, r.multicasts);
    // And every acknowledged copy went to a sink.
    assert!(r.sink_receptions >= r.multicasts);
}

#[test]
fn zbr_transfers_rather_than_replicates() {
    let r = Simulation::builder(small(20, 3, 1_000), ProtocolKind::Zbr)
        .seed(5)
        .build()
        .run();
    assert_eq!(r.copies_sent, r.multicasts, "ZBR moves single copies");
}

#[test]
fn traffic_scales_with_sensors_and_interval() {
    let light = Simulation::builder(small(10, 1, 2_000), ProtocolKind::Opt)
        .seed(6)
        .build()
        .run();
    let heavy = Simulation::builder(small(40, 1, 2_000), ProtocolKind::Opt)
        .seed(6)
        .build()
        .run();
    // 4x the sensors → roughly 4x the traffic (Poisson, generous margins).
    let scale = heavy.generated as f64 / light.generated.max(1) as f64;
    assert!(
        (2.0..8.0).contains(&scale),
        "expected ~4x traffic, got {scale:.2}x"
    );
}

#[test]
fn control_overhead_is_nonzero_but_bounded() {
    let r = Simulation::builder(small(25, 2, 1_500), ProtocolKind::Opt)
        .seed(7)
        .build()
        .run();
    assert!(r.control_bits > 0);
    assert!(r.data_bits > 0);
    // Control packets are 50 bits vs 1000-bit data; even with handshakes
    // and failed attempts the byte overhead stays within sane bounds.
    assert!(
        r.control_overhead() < 50.0,
        "overhead {} looks runaway",
        r.control_overhead()
    );
}

#[test]
fn delays_are_within_simulation_horizon() {
    let r = Simulation::builder(small(25, 3, 2_000), ProtocolKind::Opt)
        .seed(8)
        .build()
        .run();
    if r.delivered > 0 {
        assert!(r.mean_delay_secs < 2_000.0);
        assert!(r.p95_delay_secs <= 2_000.0 + 1.0);
    }
}

#[test]
fn custom_protocol_params_are_respected() {
    use dftmsn::core::params::ProtocolParams;
    let mut protocol = ProtocolParams::paper_default();
    protocol.delivery_threshold_r = 0.5;
    let config = ProtocolKind::Opt.config();
    let r = dftmsn::core::world::Simulation::builder(small(15, 2, 600), config)
        .protocol(protocol)
        .seed(9)
        .build()
        .run();
    assert!(r.generated > 0);
}

#[test]
fn trace_shows_the_two_phase_handshake() {
    use dftmsn::core::trace::{SharedTrace, TraceEvent};

    let trace = SharedTrace::new();
    let mut params = small(10, 1, 800);
    // Dense single cell so exchanges certainly happen.
    params.area_width_m = 20.0;
    params.area_height_m = 20.0;
    params.zone_cols = 1;
    params.zone_rows = 1;
    let sim = Simulation::builder(params, ProtocolKind::Opt)
        .seed(10)
        .trace(trace.clone())
        .build();
    let report = sim.run();
    assert!(report.multicasts > 0, "no exchanges to trace");

    let tags = trace.sent_tags();
    // Every successful exchange shows the Sec. 3.2 sequence somewhere:
    // PRE → RTS → CTS → SCHD → DATA → ACK.
    let mut expected = ["PRE", "RTS", "CTS", "SCHD", "DATA", "ACK"].iter();
    let mut next = expected.next();
    for tag in &tags {
        if let Some(want) = next {
            if tag == want {
                next = expected.next();
            }
        }
    }
    assert!(
        next.is_none(),
        "handshake sequence incomplete; saw {tags:?}"
    );

    // Deliveries recorded in the trace match the report.
    let traced_deliveries = trace
        .snapshot()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Delivered { .. }))
        .count() as u64;
    assert_eq!(traced_deliveries, report.delivered);

    // A preamble precedes every RTS.
    let mut pre_seen = 0u64;
    for tag in &tags {
        match *tag {
            "PRE" => pre_seen += 1,
            "RTS" => assert!(pre_seen > 0, "RTS without a preceding preamble"),
            _ => {}
        }
    }
}

#[test]
fn counting_trace_matches_report_counters() {
    use dftmsn::core::trace::CountingTrace;
    use std::sync::{Arc, Mutex};

    #[derive(Debug, Clone, Default)]
    struct SharedCounting(Arc<Mutex<CountingTrace>>);
    impl dftmsn::core::trace::TraceSink for SharedCounting {
        fn record(&mut self, event: dftmsn::core::trace::TraceEvent) {
            self.0.lock().unwrap().record(event);
        }
    }
    let counter = SharedCounting::default();
    let sim = Simulation::builder(small(15, 2, 600), ProtocolKind::Opt)
        .seed(11)
        .trace(counter.clone())
        .build();
    let report = sim.run();
    let counts = *counter.0.lock().unwrap();
    assert_eq!(counts.sent, report.frames_sent);
    assert_eq!(counts.collisions, report.collisions);
    assert_eq!(counts.deliveries, report.delivered);
    assert_eq!(
        counts.drops,
        report.drops_overflow + report.drops_rejected + report.drops_ftd
    );
}

#[test]
fn energy_breakdown_sums_to_total() {
    let r = Simulation::builder(small(15, 2, 600), ProtocolKind::Opt)
        .seed(12)
        .build()
        .run();
    let by_state: f64 = r.energy_by_state_j.iter().sum();
    // Total = per-state + switch costs, so by-state is a lower bound that
    // covers almost everything.
    assert!(by_state <= r.total_sensor_energy_j + 1e-9);
    assert!(
        by_state > 0.5 * r.total_sensor_energy_j,
        "per-state {by_state} vs total {}",
        r.total_sensor_energy_j
    );
    // Idle listening dominates a sleeping protocol's awake budget.
    assert!(r.energy_by_state_j[1] > r.energy_by_state_j[3]);
    for n in &r.node_summaries {
        let node_sum: f64 = n.energy_by_state_j.iter().sum();
        assert!(node_sum <= n.energy_j + 1e-9);
    }
}

#[test]
fn mobile_sinks_work_and_change_the_outcome() {
    let mut fixed = small(25, 3, 2_000);
    let mut mobile = fixed.clone();
    mobile.mobile_sinks = 3;
    mobile.validate().unwrap();
    let r_fixed = Simulation::builder(fixed.clone(), ProtocolKind::Opt)
        .seed(13)
        .build()
        .run();
    let r_mobile = Simulation::builder(mobile, ProtocolKind::Opt)
        .seed(13)
        .build()
        .run();
    assert!(r_fixed.generated > 0 && r_mobile.generated > 0);
    assert!(
        r_fixed.frames_sent != r_mobile.frames_sent,
        "mobile sinks had no effect"
    );
    // Validation rejects more mobile sinks than sinks.
    fixed.mobile_sinks = 4;
    assert!(fixed.validate().is_err());
}

#[test]
#[should_panic(expected = "invalid scenario")]
fn invalid_scenario_is_rejected() {
    let mut params = small(10, 1, 100);
    params.sinks = 0;
    let _ = Simulation::builder(params, ProtocolKind::Opt)
        .seed(1)
        .build();
}

#[test]
fn hop_counts_are_sane_and_direct_is_single_hop() {
    // Every delivery needs at least one handover, and multi-hop chains
    // stay short in the paper's geometry. DIRECT is exactly one hop by
    // construction. (The paper's "fewer hops with more sinks" effect is
    // muted here because home-returning mobility makes self-carry the
    // dominant path — see EXPERIMENTS.md's Fig. 2(b) note.)
    let r = Simulation::builder(small(40, 3, 3_000), ProtocolKind::Opt)
        .seed(17)
        .build()
        .run();
    assert!(r.delivered > 10);
    for d in &r.deliveries {
        assert!(d.hops >= 1, "a delivery needs at least one handover");
    }
    assert!(
        (1.0..4.0).contains(&r.mean_hops),
        "mean hops {} out of the plausible band",
        r.mean_hops
    );

    let direct = Simulation::builder(small(40, 3, 3_000), ProtocolKind::Direct)
        .seed(17)
        .build()
        .run();
    assert!(direct.delivered > 10);
    assert!(
        direct.deliveries.iter().all(|d| d.hops == 1),
        "DIRECT must hand straight to a sink"
    );
}
