//! End-to-end adversarial-behavior tests (PR 10): quiet-run bit-identity,
//! seed determinism, stacked behavior+fault plans, policy coverage, and
//! the network-lifetime report block.

use dftmsn::core::behavior::{self, NodeBehavior};
use dftmsn::prelude::*;

fn scenario() -> ScenarioParams {
    ScenarioParams::paper_default()
        .with_sensors(16)
        .with_sinks(2)
        .with_duration_secs(800)
}

/// The eight-counter fingerprint the golden determinism suite also uses.
fn fingerprint(r: &SimReport) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.generated,
        r.delivered,
        r.sink_receptions,
        r.frames_sent,
        r.collisions,
        r.attempts,
        r.multicasts,
        r.copies_sent,
    )
}

fn run_with(plan: FaultPlan, seed: u64) -> SimReport {
    Simulation::builder(scenario(), ProtocolKind::Opt)
        .seed(seed)
        .faults(plan)
        .build()
        .run()
}

#[test]
fn explicit_all_honest_spec_is_bit_identical_to_a_plain_run() {
    let plain = Simulation::builder(scenario(), ProtocolKind::Opt)
        .seed(7)
        .build()
        .run();
    let spec = behavior::parse_spec("none", &scenario(), 7).unwrap();
    assert!(spec.is_empty());
    let quiet = run_with(spec, 7);
    assert_eq!(fingerprint(&plain), fingerprint(&quiet));
    assert_eq!(plain.faults, quiet.faults);
    assert_eq!(plain.lifetime, quiet.lifetime);
}

#[test]
fn adversarial_runs_are_seed_deterministic() {
    let plan = behavior::parse_spec("selfish=0.25", &scenario(), 7).unwrap();
    let a = run_with(plan.clone(), 7);
    let b = run_with(plan, 7);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.lifetime, b.lifetime);
    assert_eq!(
        a.mean_delay_secs.to_bits(),
        b.mean_delay_secs.to_bits(),
        "float paths must match bit-for-bit, not just approximately"
    );
    assert_eq!(a.faults.behavior_changes, 4, "25% of 16 sensors");
}

#[test]
fn each_adversary_class_drives_its_own_counters() {
    // Blackholes accept-and-drop: captures, no forgeries. Probed under
    // EPIDEMIC — promiscuous forwarding feeds them copies; under OPT the
    // ξ ranking naturally starves a silent blackhole (its honest CTS
    // advertises a decayed ξ), which is the protocol's defense working.
    let r = Simulation::builder(scenario(), ProtocolKind::Epidemic)
        .seed(7)
        .faults(behavior::takeover(
            &scenario(),
            0.25,
            NodeBehavior::Blackhole,
            0.0,
            7,
        ))
        .build()
        .run();
    assert!(r.faults.copies_captured > 0, "{:?}", r.faults);
    assert_eq!(r.faults.forged_frames, 0);
    assert_eq!(r.faults.lied_advertisements, 0);

    // Liars advertise inflated ξ/FTD to attract copies.
    let r = run_with(
        behavior::takeover(&scenario(), 0.25, NodeBehavior::Liar, 0.0, 7),
        7,
    );
    assert!(r.faults.lied_advertisements > 0, "{:?}", r.faults);
    assert!(r.faults.copies_captured > 0, "{:?}", r.faults);

    // Forgers emit fake frames; receivers detect corrupted relays.
    let r = run_with(
        behavior::takeover(&scenario(), 0.25, NodeBehavior::Forger, 0.0, 7),
        7,
    );
    assert!(r.faults.forged_frames > 0, "{:?}", r.faults);
}

#[test]
fn adversaries_degrade_delivery() {
    // Across a few seeds, a 50% blackhole population must never beat the
    // honest population's aggregate deliveries.
    let mut honest_total = 0;
    let mut attacked_total = 0;
    for seed in [1, 7, 23] {
        let quiet = Simulation::builder(scenario(), ProtocolKind::Opt)
            .seed(seed)
            .build()
            .run();
        let attacked = run_with(
            behavior::takeover(&scenario(), 0.5, NodeBehavior::Blackhole, 0.0, seed),
            seed,
        );
        honest_total += quiet.delivered;
        attacked_total += attacked.delivered;
    }
    assert!(
        attacked_total < honest_total,
        "blackholes should hurt: {attacked_total} vs {honest_total}"
    );
}

#[test]
fn selfish_then_crash_stacks_cleanly() {
    // S3: the same node turns selfish, then crashes, then recovers — the
    // behavior must survive the crash (conduct is orthogonal to liveness).
    let mut plan = behavior::takeover(&scenario(), 0.25, NodeBehavior::Selfish, 0.0, 7);
    let victim = match plan.events[0].kind {
        FaultKind::BehaviorChange { node, .. } => node,
        ref k => panic!("unexpected kind {k:?}"),
    };
    let mut rest = FaultPlan::default();
    rest.push(200.0, FaultKind::NodeCrash(victim));
    rest.push(400.0, FaultKind::NodeRecover(victim));
    plan.extend(rest);
    plan.validate(&scenario()).unwrap();
    let a = run_with(plan.clone(), 7);
    let b = run_with(plan, 7);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.faults.crashes, 1);
    assert_eq!(a.faults.recoveries, 1);
    assert_eq!(a.faults.behavior_changes, 4);
}

#[test]
fn liar_under_link_drop_stays_deterministic() {
    // S3: a lying node whose frames also drop exercises the fault RNG and
    // the behavior interceptions on the same path.
    let mut plan = behavior::takeover(&scenario(), 0.25, NodeBehavior::Liar, 0.0, 7);
    plan.extend(FaultPlan::uniform_link_degradation(0.3));
    plan.validate(&scenario()).unwrap();
    let a = run_with(plan.clone(), 7);
    let b = run_with(plan, 7);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.faults, b.faults);
    assert!(a.faults.frames_dropped > 0);
}

#[test]
fn behavior_change_lands_on_a_dead_node_without_desync() {
    // S3: the node is already crashed when the behavior change fires; the
    // debug-assert liveness mirror must stay in sync and the behavior must
    // apply once the node recovers.
    let s = scenario();
    let mut plan = FaultPlan::default();
    plan.push(50.0, FaultKind::NodeCrash(dftmsn::radio::ids::NodeId(3)));
    plan.push(
        100.0,
        FaultKind::BehaviorChange {
            node: dftmsn::radio::ids::NodeId(3),
            behavior: NodeBehavior::Blackhole,
        },
    );
    plan.push(300.0, FaultKind::NodeRecover(dftmsn::radio::ids::NodeId(3)));
    plan.validate(&s).unwrap();
    let a = run_with(plan.clone(), 7);
    let b = run_with(plan, 7);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.faults.behavior_changes, 1);
    assert_eq!(a.faults.recoveries, 1);
}

#[test]
fn every_policy_faces_the_same_adversaries() {
    // The interceptions live at the MAC frame path and the policy decision
    // seam, so TwoHop and MeetingRate see the same 25% selfish set as the
    // builtin rules — and each stays seed-deterministic.
    let plan = behavior::parse_spec("selfish=0.25", &scenario(), 7).unwrap();
    for label in ["twohop", "meetrate"] {
        let spec = PolicySpec::parse(label).unwrap();
        let run = |()| {
            Simulation::builder(scenario(), ProtocolKind::Opt)
                .seed(7)
                .policy(spec)
                .faults(plan.clone())
                .build()
                .run()
        };
        let a = run(());
        let b = run(());
        assert_eq!(fingerprint(&a), fingerprint(&b), "{label}");
        assert_eq!(a.faults, b.faults, "{label}");
        assert_eq!(a.faults.behavior_changes, 4, "{label}");
    }
}

#[test]
fn lifetime_block_tracks_node_deaths() {
    let s = scenario();
    let quiet = Simulation::builder(s.clone(), ProtocolKind::Opt)
        .seed(7)
        .build()
        .run();
    assert_eq!(quiet.lifetime.first_death_secs, None);
    assert_eq!(quiet.lifetime.alive_at_end, s.sensors as u64);

    // Crash half the population permanently: FND and HND must anchor, LND
    // stays open (half the network survives), and the census drops.
    let plan = FaultPlan::node_failures(&s, 0.5, None, 7);
    let r = run_with(plan, 7);
    let fnd = r.lifetime.first_death_secs.expect("FND");
    let hnd = r.lifetime.half_death_secs.expect("HND");
    assert!(fnd <= hnd, "{fnd} vs {hnd}");
    assert_eq!(r.lifetime.last_death_secs, None);
    assert_eq!(r.lifetime.alive_at_end, (s.sensors / 2) as u64);

    // Kill everyone: LND anchors too.
    let plan = FaultPlan::node_failures(&s, 1.0, None, 7);
    let r = run_with(plan, 7);
    assert!(r.lifetime.last_death_secs.is_some());
    assert_eq!(r.lifetime.alive_at_end, 0);
}

#[test]
fn behaviors_ride_checkpoints_via_the_fault_plan() {
    // The BehaviorChange FaultKind must survive the checkpoint fault-plan
    // codec: encode a plan into a spec string, re-parse, and compare.
    let plan = behavior::parse_spec("selfish=0.1;liar=0.1@200", &scenario(), 7).unwrap();
    let reparsed = FaultPlan::parse(&plan.format_spec(), &scenario(), 7).unwrap();
    assert_eq!(plan, reparsed);
}
