//! Golden baseline for [`MobilityMode::Lazy`].
//!
//! Lazy mobility samples the same trajectory distributions as the default
//! `Ticked` mode but consumes randomness from per-node streams in
//! on-demand spans, so its outcomes are *not* bit-identical to `Ticked` —
//! they re-baseline here instead. Two properties are frozen:
//!
//! 1. **Determinism**: every variant × seed reproduces the counters
//!    recorded when the mode first landed, and running twice yields
//!    identical reports.
//! 2. **No perturbation**: requesting `Ticked` explicitly is bit-identical
//!    to the builder default, i.e. the mode plumbing itself changes
//!    nothing (the 12-golden `determinism_baseline` covers the default
//!    path's absolute values).
//!
//! To re-record after an intentional behaviour change, run
//! `cargo test --test lazy_mobility_baseline -- --ignored --nocapture`
//! and paste the printed table over `GOLDENS`.

use dftmsn::core::variants::ProtocolKind;
use dftmsn::core::MobilityMode;
use dftmsn::prelude::*;

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
struct Golden {
    generated: u64,
    delivered: u64,
    sink_receptions: u64,
    frames_sent: u64,
    collisions: u64,
    attempts: u64,
    multicasts: u64,
    copies_sent: u64,
}

/// The same pinned workload as `determinism_baseline`: 20 sensors, 2
/// sinks, 2 000 s, paper defaults.
fn pinned_scenario() -> ScenarioParams {
    ScenarioParams::paper_default()
        .with_sensors(20)
        .with_sinks(2)
        .with_duration_secs(2000)
}

const VARIANTS: [ProtocolKind; 6] = [
    ProtocolKind::Opt,
    ProtocolKind::NoOpt,
    ProtocolKind::NoSleep,
    ProtocolKind::Zbr,
    ProtocolKind::Direct,
    ProtocolKind::Epidemic,
];

/// Counters recorded when lazy mobility first landed.
const GOLDENS: [(ProtocolKind, u64, Golden); 12] = [
    (
        ProtocolKind::Opt,
        1,
        Golden {
            generated: 351,
            delivered: 236,
            sink_receptions: 269,
            frames_sent: 18651,
            collisions: 4,
            attempts: 8704,
            multicasts: 326,
            copies_sent: 326,
        },
    ),
    (
        ProtocolKind::Opt,
        42,
        Golden {
            generated: 356,
            delivered: 296,
            sink_receptions: 376,
            frames_sent: 18548,
            collisions: 8,
            attempts: 8379,
            multicasts: 481,
            copies_sent: 481,
        },
    ),
    (
        ProtocolKind::NoOpt,
        1,
        Golden {
            generated: 351,
            delivered: 224,
            sink_receptions: 260,
            frames_sent: 14746,
            collisions: 1,
            attempts: 6801,
            multicasts: 294,
            copies_sent: 294,
        },
    ),
    (
        ProtocolKind::NoOpt,
        42,
        Golden {
            generated: 328,
            delivered: 259,
            sink_receptions: 301,
            frames_sent: 14511,
            collisions: 7,
            attempts: 6581,
            multicasts: 343,
            copies_sent: 346,
        },
    ),
    (
        ProtocolKind::NoSleep,
        1,
        Golden {
            generated: 352,
            delivered: 311,
            sink_receptions: 976,
            frames_sent: 104338,
            collisions: 81,
            attempts: 48780,
            multicasts: 2223,
            copies_sent: 2242,
        },
    ),
    (
        ProtocolKind::NoSleep,
        42,
        Golden {
            generated: 324,
            delivered: 298,
            sink_receptions: 1139,
            frames_sent: 105993,
            collisions: 77,
            attempts: 49221,
            multicasts: 2518,
            copies_sent: 2539,
        },
    ),
    (
        ProtocolKind::Zbr,
        1,
        Golden {
            generated: 346,
            delivered: 217,
            sink_receptions: 221,
            frames_sent: 17936,
            collisions: 3,
            attempts: 8408,
            multicasts: 295,
            copies_sent: 295,
        },
    ),
    (
        ProtocolKind::Zbr,
        42,
        Golden {
            generated: 363,
            delivered: 290,
            sink_receptions: 295,
            frames_sent: 17517,
            collisions: 7,
            attempts: 8026,
            multicasts: 375,
            copies_sent: 375,
        },
    ),
    (
        ProtocolKind::Direct,
        1,
        Golden {
            generated: 380,
            delivered: 248,
            sink_receptions: 251,
            frames_sent: 17606,
            collisions: 0,
            attempts: 8298,
            multicasts: 248,
            copies_sent: 248,
        },
    ),
    (
        ProtocolKind::Direct,
        42,
        Golden {
            generated: 341,
            delivered: 273,
            sink_receptions: 273,
            frames_sent: 16177,
            collisions: 0,
            attempts: 7538,
            multicasts: 272,
            copies_sent: 272,
        },
    ),
    (
        ProtocolKind::Epidemic,
        1,
        Golden {
            generated: 348,
            delivered: 243,
            sink_receptions: 267,
            frames_sent: 18148,
            collisions: 6,
            attempts: 8489,
            multicasts: 291,
            copies_sent: 298,
        },
    ),
    (
        ProtocolKind::Epidemic,
        42,
        Golden {
            generated: 348,
            delivered: 274,
            sink_receptions: 348,
            frames_sent: 18192,
            collisions: 18,
            attempts: 8311,
            multicasts: 389,
            copies_sent: 426,
        },
    ),
];

fn run(kind: ProtocolKind, seed: u64, mode: MobilityMode) -> SimReport {
    Simulation::builder(pinned_scenario(), kind)
        .seed(seed)
        .mobility_mode(mode)
        .build()
        .run()
}

fn observed(kind: ProtocolKind, seed: u64) -> Golden {
    let r = run(kind, seed, MobilityMode::Lazy);
    Golden {
        generated: r.generated,
        delivered: r.delivered,
        sink_receptions: r.sink_receptions,
        frames_sent: r.frames_sent,
        collisions: r.collisions,
        attempts: r.attempts,
        multicasts: r.multicasts,
        copies_sent: r.copies_sent,
    }
}

#[test]
fn all_variants_reproduce_the_lazy_baseline() {
    for (kind, seed, golden) in GOLDENS {
        let got = observed(kind, seed);
        assert_eq!(
            got, golden,
            "{kind} seed {seed}: lazy-mode outcome drifted from the recorded baseline"
        );
    }
}

#[test]
fn lazy_runs_are_deterministic_per_seed() {
    for kind in VARIANTS {
        let a = run(kind, 7, MobilityMode::Lazy);
        let b = run(kind, 7, MobilityMode::Lazy);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{kind}: two lazy runs with one seed diverged"
        );
    }
}

#[test]
fn explicit_ticked_mode_is_the_unperturbed_default() {
    for kind in VARIANTS {
        let explicit = run(kind, 42, MobilityMode::Ticked);
        let default = Simulation::builder(pinned_scenario(), kind)
            .seed(42)
            .build()
            .run();
        assert_eq!(
            format!("{explicit:?}"),
            format!("{default:?}"),
            "{kind}: asking for Ticked explicitly perturbed the default path"
        );
    }
}

#[test]
fn lazy_delivers_comparable_traffic() {
    // Sanity floor, not a golden: the lazy trajectories are distribution-
    // equal to ticked ones, so OPT must still deliver a solid majority of
    // what it generates on the pinned scenario.
    let r = run(ProtocolKind::Opt, 1, MobilityMode::Lazy);
    assert!(r.generated > 200, "generated only {}", r.generated);
    let ratio = r.delivered as f64 / r.generated as f64;
    assert!(
        ratio > 0.4,
        "lazy OPT delivery ratio collapsed to {ratio:.2}"
    );
}

/// Re-records `GOLDENS`; run with `-- --ignored --nocapture`.
#[test]
#[ignore = "generator: prints the golden table for re-recording"]
fn print_lazy_goldens() {
    for kind in VARIANTS {
        for seed in [1u64, 42] {
            let g = observed(kind, seed);
            println!(
                "    (\n        ProtocolKind::{kind:?},\n        {seed},\n        Golden {{\n            generated: {},\n            delivered: {},\n            sink_receptions: {},\n            frames_sent: {},\n            collisions: {},\n            attempts: {},\n            multicasts: {},\n            copies_sent: {},\n        }},\n    ),",
                g.generated,
                g.delivered,
                g.sink_receptions,
                g.frames_sent,
                g.collisions,
                g.attempts,
                g.multicasts,
                g.copies_sent
            );
        }
    }
}
