//! End-to-end checks of the windowed observability pipeline: the JSONL
//! stream a [`MetricsRecorder`] emits must be well formed, byte-for-byte
//! deterministic, reconcile *exactly* with the [`SimReport`] of the same
//! run, and attaching it must not perturb the simulation at all.

use dftmsn::core::variants::ProtocolKind;
use dftmsn::metrics::json::Json;
use dftmsn::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Box<dyn Write + Send>`-able buffer that stays readable after the
/// recorder consumed the box.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("JSONL is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs the smoke-test scenario with a streaming recorder, returning the
/// report and the raw JSONL text.
fn observed_smoke_run(window_secs: f64) -> (SimReport, String) {
    let buf = SharedBuf::default();
    let recorder = MetricsRecorder::new(window_secs)
        .streaming_only()
        .with_output(Box::new(buf.clone()));
    let report = Simulation::builder(ScenarioParams::smoke_test(), ProtocolKind::Opt)
        .seed(1)
        .observe(recorder)
        .build()
        .run();
    (report, buf.text())
}

#[test]
fn jsonl_stream_is_well_formed_and_deterministic() {
    let (_, first) = observed_smoke_run(100.0);
    let (_, second) = observed_smoke_run(100.0);
    assert_eq!(first, second, "same run, different JSONL bytes");

    let lines: Vec<&str> = first.lines().collect();
    assert!(lines.len() >= 3, "header + windows + totals: {first}");
    for (i, line) in lines.iter().enumerate() {
        let j = Json::parse(line).unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
        if i == 0 {
            assert_eq!(
                j.get("schema").and_then(Json::as_str),
                Some("dftmsn-observe/1")
            );
            assert_eq!(j.get("window_secs").and_then(Json::as_f64), Some(100.0));
            assert_eq!(j.get("protocol").and_then(Json::as_str), Some("OPT"));
        } else if i == lines.len() - 1 {
            assert_eq!(j.get("totals").and_then(Json::as_bool), Some(true));
        } else {
            // Window rows are contiguous from 0 and internally consistent.
            assert_eq!(j.get("window").and_then(Json::as_f64), Some((i - 1) as f64));
            let t0 = j.get("t0").and_then(Json::as_f64).unwrap();
            let t1 = j.get("t1").and_then(Json::as_f64).unwrap();
            assert!(t0 <= t1, "window {i} runs backwards: [{t0}, {t1}]");
            assert!(
                j.get("snapshot").is_some(),
                "window row {i} lacks a snapshot field"
            );
        }
    }
}

#[test]
fn totals_reconcile_exactly_with_the_report() {
    let (report, text) = observed_smoke_run(100.0);
    let totals = Json::parse(text.lines().last().expect("totals line")).unwrap();
    let field = |k: &str| totals.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    assert_eq!(field("deliveries"), report.delivered as f64);
    assert_eq!(field("collisions"), report.collisions as f64);
    assert_eq!(field("frames_sent"), report.frames_sent as f64);
    assert_eq!(field("drops_overflow"), report.drops_overflow as f64);
    assert_eq!(field("drops_rejected"), report.drops_rejected as f64);
    assert_eq!(field("drops_ftd"), report.drops_ftd as f64);
    // Per-window deliveries sum to the same total: nothing double counted,
    // nothing lost at window boundaries or run end.
    let windowed: f64 = text
        .lines()
        .filter_map(|l| {
            let j = Json::parse(l).ok()?;
            j.get("window")?;
            j.get("deliveries").and_then(Json::as_f64)
        })
        .sum();
    assert_eq!(windowed, report.delivered as f64);
}

#[test]
fn faulted_run_reconciles_and_marks_onset() {
    let scenario = ScenarioParams::smoke_test();
    let faults = FaultPlan::node_failures(&scenario, 0.3, None, 7);
    let buf = SharedBuf::default();
    let recorder = MetricsRecorder::new(150.0)
        .streaming_only()
        .with_output(Box::new(buf.clone()));
    let report = Simulation::builder(scenario, ProtocolKind::Opt)
        .seed(7)
        .faults(faults)
        .observe(recorder)
        .build()
        .run();
    let text = buf.text();
    let totals = Json::parse(text.lines().last().unwrap()).unwrap();
    assert_eq!(
        totals.get("deliveries").and_then(Json::as_f64),
        Some(report.delivered as f64)
    );
    let fault_markers: f64 = text
        .lines()
        .filter_map(|l| {
            let j = Json::parse(l).ok()?;
            j.get("window")?;
            j.get("faults").and_then(Json::as_f64)
        })
        .sum();
    assert!(
        fault_markers > 0.0,
        "fault onset never surfaced in the windows"
    );
    assert_eq!(
        totals.get("faults").and_then(Json::as_f64),
        Some(fault_markers)
    );
}

#[test]
fn observer_leaves_every_variant_bit_identical() {
    let scenario = ScenarioParams::paper_default()
        .with_sensors(15)
        .with_sinks(2)
        .with_duration_secs(800);
    for kind in ProtocolKind::ALL {
        let plain = Simulation::builder(scenario.clone(), kind)
            .seed(42)
            .build()
            .run();
        let recorder = MetricsRecorder::new(90.0);
        let observed = Simulation::builder(scenario.clone(), kind)
            .seed(42)
            .observe(recorder.clone())
            .build()
            .run();
        assert_eq!(
            plain.to_json().render(),
            observed.to_json().render(),
            "{kind}: attaching the observer changed the run"
        );
        let (windows, totals) = recorder.totals();
        assert!(windows > 0, "{kind}: no windows recorded");
        assert_eq!(totals.deliveries, plain.delivered, "{kind}");
    }
}

#[test]
fn golden_jsonl_snapshot_on_the_smoke_scenario() {
    // Frozen from the recorder's first release. A diff here means the
    // `dftmsn-observe/1` wire format or the simulation outcome changed —
    // either bump the schema or re-record, and say so in change notes.
    let (report, text) = observed_smoke_run(500.0);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines[0],
        r#"{"schema":"dftmsn-observe/1","window_secs":500,"protocol":"OPT","seed":1,"duration_secs":1500,"sensors":30,"sinks":2}"#
    );
    assert_eq!(lines.len(), 5, "header + 3 windows + totals");
    assert_eq!(report.delivered, 212);
    assert_eq!(
        lines[4],
        r#"{"totals":true,"windows":3,"deliveries":212,"delay_sum_secs":64774.52839300001,"drops_overflow":0,"drops_rejected":0,"drops_ftd":0,"collisions":10,"frames_sent":21034,"frame_deliveries":2081,"control_bits":1035800,"data_bits":318000,"sleeps":10936,"faults":0}"#
    );
}
