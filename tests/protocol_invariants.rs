//! Property-based tests of the protocol's core invariants (Eqs. 1–14 and
//! the queue discipline), run on arbitrary inputs via proptest.

use dftmsn::core::contention::{
    cts_collision_probability, optimize_cts_window, optimize_tau_max, rts_collision_probability,
    sigma,
};
use dftmsn::core::delivery::DeliveryProb;
use dftmsn::core::ftd::Ftd;
use dftmsn::core::message::{Message, MessageId};
use dftmsn::core::neighbor::{select_receivers, Candidate};
use dftmsn::core::params::ProtocolParams;
use dftmsn::core::queue::FtdQueue;
use dftmsn::core::sleep::SleepController;
use dftmsn::radio::ids::NodeId;
use dftmsn::sim::time::SimTime;
use proptest::prelude::*;

fn prob() -> impl Strategy<Value = f64> {
    (0u32..=1000).prop_map(|x| x as f64 / 1000.0)
}

/// Like [`prob`], but heavily over-samples the boundaries where the
/// protocol math degenerates: exactly 0, exactly 1, and one-ulp
/// neighbours of both.
fn prob_extreme() -> impl Strategy<Value = f64> {
    (0u32..=1040).prop_map(|x| match x {
        1001..=1010 => 0.0,
        1011..=1020 => 1.0,
        1021..=1030 => f64::EPSILON,
        1031..=1040 => 1.0 - f64::EPSILON,
        x => x as f64 / 1000.0,
    })
}

proptest! {
    /// Eq. 1 keeps ξ in [0, 1] under any sequence of transmissions and
    /// timeouts.
    #[test]
    fn xi_stays_in_unit_interval(
        alpha in prob(),
        ops in proptest::collection::vec((any::<bool>(), prob()), 0..200),
    ) {
        let mut xi = DeliveryProb::ZERO;
        for (is_tx, peer) in ops {
            if is_tx {
                xi.on_transmission(DeliveryProb::new(peer), alpha);
            } else {
                xi.on_timeout(alpha);
            }
            prop_assert!((0.0..=1.0).contains(&xi.value()));
        }
    }

    /// Eq. 3 never decreases a copy's FTD, whatever the receiver set.
    #[test]
    fn ftd_monotone_under_multicast(
        start in prob(),
        rounds in proptest::collection::vec(
            proptest::collection::vec(prob(), 0..5), 0..20),
    ) {
        let mut f = Ftd::new(start);
        for xis in rounds {
            let next = f.after_multicast(&xis);
            prop_assert!(next.value() >= f.value());
            prop_assert!(next.value() <= 1.0);
            f = next;
        }
    }

    /// Eq. 2: a receiver's copy FTD is bounded by the full-set combined
    /// delivery probability, and never below the sender's retained share.
    #[test]
    fn receiver_copy_is_bounded(
        base in prob(),
        sender_xi in prob(),
        xis in proptest::collection::vec(prob(), 1..6),
    ) {
        let f = Ftd::new(base);
        for j in 0..xis.len() {
            let others: Vec<f64> = xis
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != j)
                .map(|(_, &x)| x)
                .collect();
            let copy = f.receiver_copy(sender_xi, &others);
            prop_assert!((0.0..=1.0).contains(&copy.value()));
            // At least as redundant as the no-co-receiver case.
            let lone = f.receiver_copy(sender_xi, &[]);
            prop_assert!(copy.value() >= lone.value() - 1e-12);
        }
    }

    /// The queue respects capacity and keeps ascending-FTD order under
    /// arbitrary insert/pop/update churn.
    #[test]
    fn queue_order_and_capacity_hold(
        capacity in 1usize..20,
        ops in proptest::collection::vec((0u64..40, prob(), any::<bool>()), 0..200),
    ) {
        let mut q = FtdQueue::new(capacity);
        for (id, ftd, pop) in ops {
            if pop {
                let _ = q.pop_head();
            } else {
                let m = Message::sensed(MessageId(id), NodeId(0), SimTime::ZERO)
                    .with_ftd(Ftd::new(ftd));
                let _ = q.insert(m);
            }
            prop_assert!(q.len() <= capacity);
            let ftds: Vec<f64> = q.iter().map(|m| m.ftd.value()).collect();
            for w in ftds.windows(2) {
                prop_assert!(w[0] <= w[1], "queue out of order: {ftds:?}");
            }
        }
    }

    /// `available_space_for` is consistent with its definition:
    /// capacity − |{m : m.ftd ≤ f}|, and monotone decreasing in f.
    #[test]
    fn available_space_matches_definition(
        capacity in 1usize..20,
        inserts in proptest::collection::vec((0u64..100, prob()), 0..30),
        f in prob(),
    ) {
        let mut q = FtdQueue::new(capacity);
        for (id, ftd) in inserts {
            let _ = q.insert(
                Message::sensed(MessageId(id), NodeId(0), SimTime::ZERO)
                    .with_ftd(Ftd::new(ftd)),
            );
        }
        let le = q.iter().filter(|m| m.ftd.value() <= f).count();
        prop_assert_eq!(q.available_space_for(Ftd::new(f)), capacity - le);
        if f + 0.1 <= 1.0 {
            prop_assert!(
                q.available_space_for(Ftd::new(f + 0.1))
                    <= q.available_space_for(Ftd::new(f))
            );
        }
    }

    /// Eq. 12 is a probability and single contenders never collide.
    #[test]
    fn rts_collision_is_probability(
        sigmas in proptest::collection::vec(1u64..40, 1..6),
    ) {
        let gamma = rts_collision_probability(&sigmas);
        prop_assert!((0.0..=1.0).contains(&gamma));
        if sigmas.len() == 1 {
            prop_assert_eq!(gamma, 0.0);
        }
    }

    /// Eq. 13's result is feasible (or the cap) and minimal.
    #[test]
    fn tau_optimizer_minimal_and_feasible(
        xis in proptest::collection::vec(prob(), 1..5),
        target in 1u32..50,
    ) {
        let target = target as f64 / 100.0;
        let cap = 64;
        let best = optimize_tau_max(&xis, target, cap);
        prop_assert!((1..=cap).contains(&best));
        let gamma_at = |t: u64| {
            let s: Vec<u64> = xis.iter().map(|&x| sigma(x, t)).collect();
            rts_collision_probability(&s)
        };
        if best < cap {
            prop_assert!(gamma_at(best) <= target);
        }
        if best > 1 && gamma_at(best) <= target {
            prop_assert!(gamma_at(best - 1) > target, "not minimal at {best}");
        }
    }

    /// Eq. 14 is a probability, monotone in n and anti-monotone in w; the
    /// window search is minimal-feasible.
    #[test]
    fn cts_window_math_is_sound(n in 0u64..12, w in 1u64..64, target in 1u32..50) {
        let target = target as f64 / 100.0;
        let p = cts_collision_probability(n, w);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(cts_collision_probability(n + 1, w) >= p);
        prop_assert!(cts_collision_probability(n, w + 1) <= p);

        let best = optimize_cts_window(n, target, 4096);
        if best < 4096 {
            prop_assert!(cts_collision_probability(n, best) <= target);
            if best > 1 {
                prop_assert!(cts_collision_probability(n, best - 1) > target);
            }
        }
    }

    /// Eq. 6's sleeping period always lands in [T_min, T_max].
    #[test]
    fn sleep_duration_is_bounded(
        history in proptest::collection::vec(any::<bool>(), 0..40),
        urgency in prob(),
    ) {
        let p = ProtocolParams::paper_default();
        let mut ctl = SleepController::new(p.history_window_s);
        for h in history {
            ctl.record_cycle(h);
        }
        let t = ctl.sleep_duration(urgency, &p);
        prop_assert!(t.as_secs_f64() >= p.t_min_secs - 1e-9);
        prop_assert!(t <= p.t_max());
    }

    /// Receiver selection only picks qualified candidates and orders them
    /// by descending ξ.
    #[test]
    fn selection_picks_only_qualified(
        sender_xi in prob(),
        ftd in prob(),
        cands in proptest::collection::vec((prob(), 0usize..5), 0..8),
        r in prob(),
    ) {
        // Each neighbor replies with at most one CTS, so ids are distinct.
        let candidates: Vec<Candidate> = cands
            .iter()
            .enumerate()
            .map(|(id, &(xi, space))| Candidate { id: NodeId(id), xi, buffer_space: space })
            .collect();
        let sel = select_receivers(sender_xi, Ftd::new(ftd), &candidates, r);
        prop_assert_eq!(sel.receivers.len(), sel.receiver_xis.len());
        for (k, &(id, copy_ftd)) in sel.receivers.iter().enumerate() {
            let c = candidates.iter().find(|c| c.id == id).unwrap();
            prop_assert!(c.xi > sender_xi, "unqualified ξ selected");
            prop_assert!(c.buffer_space > 0, "no-space candidate selected");
            prop_assert!((0.0..=1.0).contains(&copy_ftd.value()));
            if k > 0 {
                prop_assert!(sel.receiver_xis[k - 1] >= sel.receiver_xis[k]);
            }
        }
        prop_assert!((0.0..=1.0).contains(&sel.combined_delivery));
    }

    /// Eq. 1 keeps ξ in [0, 1] even when α and the peer's ξ sit exactly on
    /// (or one ulp inside) the unit-interval boundaries, interleaved with
    /// multi-window Δ catch-up decay.
    #[test]
    fn xi_survives_extreme_boundary_sequences(
        alpha in prob_extreme(),
        ops in proptest::collection::vec(
            (0u8..3, prob_extreme(), 0u64..5), 0..150),
    ) {
        let mut xi = DeliveryProb::ZERO;
        for (op, peer, windows) in ops {
            match op {
                0 => xi.on_transmission(DeliveryProb::new(peer), alpha),
                1 => xi.on_timeout(alpha),
                _ => xi.decay_windows(alpha, windows),
            }
            prop_assert!((0.0..=1.0).contains(&xi.value()), "{}", xi.value());
        }
    }

    /// Eq. 3 keeps FTD in [0, 1] under extreme receiver-ξ multicasts, and a
    /// receiver with ξ = 1 saturates the copy exactly.
    #[test]
    fn ftd_survives_extreme_receiver_xis(
        start in prob_extreme(),
        rounds in proptest::collection::vec(
            proptest::collection::vec(prob_extreme(), 0..5), 0..20),
    ) {
        let mut f = Ftd::new(start);
        for xis in rounds {
            let next = f.after_multicast(&xis);
            prop_assert!((0.0..=1.0).contains(&next.value()));
            prop_assert!(next.value() >= f.value());
            if xis.contains(&1.0) {
                prop_assert_eq!(next.value(), 1.0, "sink receiver must saturate");
            }
            f = next;
        }
    }

    /// The combined delivery probability of Sec. 3.2.2 is monotone in the
    /// receiver set: adding a receiver never lowers it.
    #[test]
    fn combined_delivery_monotone_in_receiver_set(
        base in prob_extreme(),
        xis in proptest::collection::vec(prob_extreme(), 0..8),
        extra in prob_extreme(),
    ) {
        let f = Ftd::new(base);
        let without = f.combined_delivery(&xis);
        let mut grown = xis.clone();
        grown.push(extra);
        let with = f.combined_delivery(&grown);
        prop_assert!(with >= without, "{with} < {without}");
        prop_assert!((0.0..=1.0).contains(&with));
        // ξ = 0 receivers are exact no-ops.
        let mut padded = xis;
        padded.push(0.0);
        prop_assert_eq!(f.combined_delivery(&padded), without);
    }

    /// Multi-window catch-up decay is bitwise identical to firing the Δ
    /// timeout once per window, for any α.
    #[test]
    fn decay_windows_equals_repeated_timeouts(
        start in prob(),
        alpha in prob_extreme(),
        windows in 0u64..50,
    ) {
        let mut batched = DeliveryProb::new(start);
        let mut stepped = DeliveryProb::new(start);
        batched.decay_windows(alpha, windows);
        for _ in 0..windows {
            stepped.on_timeout(alpha);
        }
        prop_assert_eq!(batched.value().to_bits(), stepped.value().to_bits());
    }

    /// Eq. 6 never schedules a wake-up at the current instant, even for a
    /// degenerate T_min of zero: the result is at least one queue tick.
    #[test]
    fn sleep_duration_never_below_one_tick(
        t_min_centis in 0u32..=200,
        history in proptest::collection::vec(any::<bool>(), 0..40),
        urgency in prob(),
    ) {
        let p = ProtocolParams::paper_default().with_t_min_secs(t_min_centis as f64 / 100.0);
        let mut ctl = SleepController::new(p.history_window_s);
        for h in history {
            ctl.record_cycle(h);
        }
        let t = ctl.sleep_duration(urgency, &p);
        prop_assert!(t >= dftmsn::sim::time::SimDuration::from_ticks(1));
        prop_assert!(t <= p.t_max().max(dftmsn::sim::time::SimDuration::from_ticks(1)));
    }
}
