//! Failure-injection and edge-case scenarios: starve the protocol of
//! resources, contacts or peers and confirm it degrades gracefully
//! instead of wedging or panicking.

use dftmsn::core::params::ProtocolParams;
use dftmsn::prelude::*;

fn base(secs: u64) -> ScenarioParams {
    ScenarioParams::paper_default().with_duration_secs(secs)
}

#[test]
fn lone_sensor_still_delivers_by_carrying() {
    // One sensor, one sink, small area: the only path is self-carry.
    let mut p = base(3_000).with_sensors(1).with_sinks(1);
    p.area_width_m = 40.0;
    p.area_height_m = 40.0;
    p.zone_cols = 2;
    p.zone_rows = 2;
    let r = Simulation::builder(p, ProtocolKind::Opt)
        .seed(1)
        .build()
        .run();
    assert!(r.generated > 0);
    assert!(
        r.delivered > 0,
        "direct contact delivery failed: {}",
        r.summary()
    );
}

#[test]
fn stationary_out_of_range_sensors_deliver_nothing() {
    // Zero speed pins every sensor inside its home zone spawn point; with
    // a huge area the odds of spawning within 10 m of a sink are nil.
    let mut p = base(2_000).with_sensors(10).with_sinks(1);
    p.speed_min_mps = 0.0;
    p.speed_max_mps = 0.0;
    p.area_width_m = 2_000.0;
    p.area_height_m = 2_000.0;
    let r = Simulation::builder(p, ProtocolKind::Opt)
        .seed(2)
        .build()
        .run();
    assert!(r.generated > 0);
    assert_eq!(r.delivered, 0, "physically impossible delivery happened");
    assert_eq!(r.multicasts, 0);
}

#[test]
fn tiny_queues_survive_overload() {
    let mut p = base(2_000).with_sensors(20).with_sinks(1);
    p.queue_capacity = 2;
    p.data_interval_secs = 10.0; // 12x the default load
    let r = Simulation::builder(p, ProtocolKind::Opt)
        .seed(3)
        .build()
        .run();
    assert!(r.generated > 0);
    assert!(
        r.drops_overflow + r.drops_rejected > 0,
        "overload must overflow a 2-slot queue"
    );
    assert!(r.delivered <= r.generated);
}

#[test]
fn saturating_traffic_does_not_wedge_the_mac() {
    let mut p = base(1_000).with_sensors(30).with_sinks(2);
    p.data_interval_secs = 5.0;
    for kind in [ProtocolKind::Opt, ProtocolKind::Epidemic] {
        let r = Simulation::builder(p.clone(), kind).seed(4).build().run();
        assert!(r.attempts > 0, "{kind}: MAC went silent under load");
        assert!(r.frames_sent > 0);
    }
}

#[test]
fn single_zone_grid_works() {
    let mut p = base(1_500).with_sensors(10).with_sinks(1);
    p.zone_cols = 1;
    p.zone_rows = 1;
    p.area_width_m = 60.0;
    p.area_height_m = 60.0;
    let r = Simulation::builder(p, ProtocolKind::Opt)
        .seed(5)
        .build()
        .run();
    assert!(r.delivered > 0, "dense single-zone world should deliver");
}

#[test]
fn dense_cell_heavy_contention_stays_live() {
    // Everyone within everyone's range: maximum contention for the
    // asynchronous phase.
    let mut p = base(1_000).with_sensors(25).with_sinks(1);
    p.area_width_m = 15.0;
    p.area_height_m = 15.0;
    p.zone_cols = 1;
    p.zone_rows = 1;
    let r = Simulation::builder(p, ProtocolKind::NoSleep)
        .seed(6)
        .build()
        .run();
    assert!(
        r.delivered > 0,
        "contention wedged the channel: {}",
        r.summary()
    );
    assert!(r.collisions > 0, "a 25-node cell must collide sometimes");
}

#[test]
fn extreme_protocol_constants_do_not_panic() {
    let scenarios = [
        // Always-drop threshold: every relayed copy purges after Eq. 3.
        ProtocolParams::paper_default().with_ftd_drop_threshold(0.0),
        // Never select more than forced: R = 0 stops at the first receiver.
        ProtocolParams::paper_default().with_delivery_threshold_r(0.0),
        // Paranoid redundancy: R = 1 takes every qualified receiver.
        ProtocolParams::paper_default().with_delivery_threshold_r(1.0),
        // Hyperactive ξ decay.
        ProtocolParams::paper_default()
            .with_xi_timeout_secs(1.0)
            .with_alpha(1.0),
    ];
    for protocol in scenarios {
        let r = dftmsn::core::world::Simulation::builder(
            base(500).with_sensors(12).with_sinks(1),
            ProtocolKind::Opt.config(),
        )
        .protocol(protocol)
        .seed(7)
        .build()
        .run();
        assert!(r.generated > 0);
    }
}

#[test]
fn zero_min_speed_and_equal_speed_bounds_work() {
    let mut p = base(800).with_sensors(10).with_sinks(1);
    p.speed_min_mps = 3.0;
    p.speed_max_mps = 3.0;
    let r = Simulation::builder(p, ProtocolKind::Opt)
        .seed(8)
        .build()
        .run();
    assert!(r.generated > 0);
}

#[test]
fn faults_under_parallel_execution_degrade_gracefully_and_match() {
    // Crash a third of a sparse fleet while the parallel interval
    // executor is engaged: faults terminate intervals, crash/recovery
    // state machines run on merged state, and the result must still be
    // bit-identical to the sequential engine's — graceful degradation,
    // not just absence of panics.
    let mut p = base(600).with_sensors(200).with_sinks(2);
    p.area_width_m = 300.0;
    p.area_height_m = 300.0;
    p.zone_cols = 10;
    p.zone_rows = 10;
    p.data_interval_secs = 240.0;
    let plan = FaultPlan::node_failures(&p, 0.33, Some(120.0), 11);
    let seq = Simulation::builder(p.clone(), ProtocolKind::Opt)
        .seed(10)
        .faults(plan.clone())
        .build()
        .run();
    assert!(seq.faults.crashes > 0, "plan injected nothing");
    assert!(
        seq.generated > 0 && seq.delivered <= seq.generated,
        "faulted run lost accounting sanity: {}",
        seq.summary()
    );
    let par = Simulation::builder(p, ProtocolKind::Opt)
        .seed(10)
        .faults(plan)
        .threads(4)
        .build()
        .run();
    assert_eq!(par.faults, seq.faults, "fault counters diverged");
    assert_eq!(
        (
            par.generated,
            par.delivered,
            par.frames_sent,
            par.events_processed
        ),
        (
            seq.generated,
            seq.delivered,
            seq.frames_sent,
            seq.events_processed
        ),
        "parallel faulted run diverged from sequential"
    );
}

#[test]
fn long_idle_network_sleeps_instead_of_spinning() {
    // Almost no traffic: nodes should spend the run asleep, not burning
    // events. Power must approach the sleep floor, far below idle.
    let mut p = base(2_000).with_sensors(10).with_sinks(1);
    p.data_interval_secs = 100_000.0; // effectively no data
    let r = Simulation::builder(p, ProtocolKind::Opt)
        .seed(9)
        .build()
        .run();
    assert!(
        r.avg_sensor_power_mw < 3.0,
        "idle network burns {} mW",
        r.avg_sensor_power_mw
    );
}
