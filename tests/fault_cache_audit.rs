//! Fault-path invalidation audit of the ticked-mode contact cache.
//!
//! The cache memoizes neighbour *supersets* keyed by a worst-case-drift
//! validity window; crash/recover and link-drop faults mutate liveness and
//! the medium but deliberately not the cached geometry, because liveness
//! is filtered downstream of the neighbour query and drop coins are
//! flipped at reception time. This suite is the proof: runs with the
//! cache disabled — every query takes the exact uncached path — must be
//! bit-identical to cached runs under every fault family. A divergence
//! here means a fault handler left stale geometry (not stale liveness)
//! behind, i.e. a real invalidation bug.

use dftmsn::core::variants::ProtocolKind;
use dftmsn::prelude::*;

fn scenario() -> ScenarioParams {
    ScenarioParams::paper_default()
        .with_sensors(20)
        .with_sinks(2)
        .with_duration_secs(600)
}

fn fingerprint(r: &SimReport) -> Vec<u64> {
    vec![
        r.generated,
        r.delivered,
        r.sink_receptions,
        r.frames_sent,
        r.collisions,
        r.attempts,
        r.multicasts,
        r.copies_sent,
        r.events_processed,
        r.mean_delay_secs.to_bits(),
        r.total_sensor_energy_j.to_bits(),
        r.faults.crashes,
        r.faults.recoveries,
        r.faults.frames_dropped,
        r.faults.messages_lost_to_crash,
    ]
}

fn run(kind: ProtocolKind, seed: u64, plan: &FaultPlan, cached: bool) -> SimReport {
    Simulation::builder(scenario(), kind)
        .seed(seed)
        .mobility_mode(MobilityMode::Ticked)
        .faults(plan.clone())
        .contact_cache(cached)
        .build()
        .run()
}

#[test]
fn crash_recover_plans_are_cache_invariant() {
    let plan = FaultPlan::node_failures(&scenario(), 0.4, Some(120.0), 21);
    for seed in [1, 42] {
        let cached = run(ProtocolKind::Opt, seed, &plan, true);
        assert!(cached.faults.crashes > 0, "plan injected nothing");
        assert!(cached.faults.recoveries > 0, "no recovery exercised");
        let uncached = run(ProtocolKind::Opt, seed, &plan, false);
        assert_eq!(
            fingerprint(&uncached),
            fingerprint(&cached),
            "seed {seed}: crash/recover run depends on the contact cache"
        );
    }
}

#[test]
fn permanent_crash_plans_are_cache_invariant() {
    let plan = FaultPlan::node_failures(&scenario(), 0.3, None, 33);
    let cached = run(ProtocolKind::Epidemic, 7, &plan, true);
    assert!(cached.faults.crashes > 0);
    let uncached = run(ProtocolKind::Epidemic, 7, &plan, false);
    assert_eq!(
        fingerprint(&uncached),
        fingerprint(&cached),
        "permanent-crash run depends on the contact cache"
    );
}

#[test]
fn link_drop_plans_are_cache_invariant() {
    let mut plan = FaultPlan::uniform_link_degradation(0.25);
    // Pile a targeted degradation and a later global easing on top, so
    // both the per-pair table and the global knob flip mid-run.
    plan.push(
        200.0,
        FaultKind::LinkDegrade {
            a: dftmsn::radio::ids::NodeId(0),
            b: dftmsn::radio::ids::NodeId(1),
            drop_prob: 0.9,
        },
    );
    plan.push(400.0, FaultKind::GlobalLinkDegrade { drop_prob: 0.05 });
    let cached = run(ProtocolKind::Opt, 13, &plan, true);
    assert!(cached.faults.frames_dropped > 0, "no drops injected");
    let uncached = run(ProtocolKind::Opt, 13, &plan, false);
    assert_eq!(
        fingerprint(&uncached),
        fingerprint(&cached),
        "link-drop run depends on the contact cache"
    );
}

#[test]
fn quiet_runs_are_cache_invariant_too() {
    // Baseline sanity: with no faults at all, the knob is invisible.
    let plan = FaultPlan::default();
    let cached = run(ProtocolKind::Opt, 99, &plan, true);
    let uncached = run(ProtocolKind::Opt, 99, &plan, false);
    assert_eq!(fingerprint(&uncached), fingerprint(&cached));
}
