//! Randomized stress tests of the whole engine: small simulations over
//! arbitrary (valid) scenario corners must never panic, wedge, or violate
//! the global accounting invariants.

use dftmsn::core::params::MobilityKind;
use dftmsn::prelude::*;
use proptest::prelude::*;

fn kind_from(ix: u8) -> ProtocolKind {
    ProtocolKind::ALL[ix as usize % ProtocolKind::ALL.len()]
}

fn mobility_from(ix: u8) -> MobilityKind {
    [
        MobilityKind::ZoneBased,
        MobilityKind::RandomWaypoint,
        MobilityKind::RandomWalk,
    ][ix as usize % 3]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full (small) simulation
    })]

    #[test]
    fn random_scenarios_hold_global_invariants(
        seed in any::<u64>(),
        kind_ix in any::<u8>(),
        mobility_ix in any::<u8>(),
        sensors in 2usize..20,
        sinks in 1usize..4,
        mobile_sinks in 0usize..4,
        area in 20.0f64..250.0,
        zones in 1usize..6,
        vmax in 0.5f64..8.0,
        queue_cap in 1usize..50,
        interval in 10.0f64..200.0,
    ) {
        let mut params = ScenarioParams::paper_default()
            .with_sensors(sensors)
            .with_sinks(sinks)
            .with_max_speed(vmax)
            .with_duration_secs(150);
        params.area_width_m = area;
        params.area_height_m = area;
        params.zone_cols = zones;
        params.zone_rows = zones;
        params.queue_capacity = queue_cap;
        params.data_interval_secs = interval;
        params.mobility = mobility_from(mobility_ix);
        params.mobile_sinks = mobile_sinks.min(sinks);
        prop_assert!(params.validate().is_ok());

        let kind = kind_from(kind_ix);
        let report = Simulation::builder(params, kind).seed(seed).build().run();

        // Accounting invariants that must hold for ANY run.
        prop_assert!(report.delivered <= report.generated);
        prop_assert!(report.sink_receptions >= report.delivered);
        prop_assert!(report.copies_sent >= report.multicasts);
        prop_assert!(report.multicasts <= report.attempts);
        prop_assert!(report.mean_delay_secs >= 0.0);
        prop_assert!(report.mean_delay_secs <= report.duration_secs + 1.0);
        prop_assert!(report.total_sensor_energy_j >= 0.0);
        prop_assert!(report.avg_sensor_power_mw <= 26.0, "over transmit power");
        prop_assert!((0.0..=1.0).contains(&report.mean_final_xi));
        prop_assert_eq!(report.deliveries.len() as u64, report.delivered);
        for d in &report.deliveries {
            prop_assert!(d.hops >= 1);
            prop_assert!(d.delay_secs >= 0.0);
            prop_assert!(d.created_secs <= report.duration_secs);
        }
        for n in &report.node_summaries {
            prop_assert!(n.queue_len <= queue_cap);
            prop_assert!(n.energy_j >= 0.0);
            prop_assert!((0.0..=1.0).contains(&n.final_metric));
        }
        // Per-state energy never exceeds the total.
        let by_state: f64 = report.energy_by_state_j.iter().sum();
        prop_assert!(by_state <= report.total_sensor_energy_j + 1e-9);
    }

    #[test]
    fn random_scenarios_are_deterministic(
        seed in any::<u64>(),
        kind_ix in any::<u8>(),
        sensors in 2usize..15,
    ) {
        let params = ScenarioParams::paper_default()
            .with_sensors(sensors)
            .with_sinks(1)
            .with_duration_secs(120);
        let kind = kind_from(kind_ix);
        let a = Simulation::builder(params.clone(), kind).seed(seed).build().run();
        let b = Simulation::builder(params, kind).seed(seed).build().run();
        prop_assert_eq!(a.generated, b.generated);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert_eq!(a.frames_sent, b.frames_sent);
        prop_assert_eq!(a.collisions, b.collisions);
    }
}
