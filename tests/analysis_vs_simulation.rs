//! Cross-validation of the analytic models (crate::analysis) against the
//! simulator on a well-mixed scenario — the same sanity check the
//! companion paper [5] ran between its queueing models and simulation.
//!
//! The analytic models assume exponential inter-contacts and no MAC or
//! queue losses, so we check for *agreement in the large* (same ballpark,
//! same ordering), not equality.

use dftmsn::core::analysis::{direct_average_ratio, ContactModel, EpidemicModel};
use dftmsn::prelude::*;

/// A freely roaming (exit probability 1) scenario is closest to the
/// well-mixed assumption behind the contact-rate formula.
fn mixed(sensors: usize, sinks: usize, secs: u64) -> ScenarioParams {
    let mut p = ScenarioParams::paper_default()
        .with_sensors(sensors)
        .with_sinks(sinks)
        .with_duration_secs(secs);
    p.zone_exit_prob = 1.0;
    p
}

#[test]
fn direct_simulation_lands_near_the_analytic_ratio() {
    let params = mixed(30, 3, 8_000);
    let contacts = ContactModel::from_scenario(&params);
    let analytic = direct_average_ratio(contacts.lambda_node_sink, 3, 8_000.0);

    let mut ratios = Vec::new();
    for seed in 0..3 {
        let r = Simulation::builder(params.clone(), ProtocolKind::Direct)
            .seed(seed)
            .build()
            .run();
        ratios.push(r.delivery_ratio());
    }
    let simulated = ratios.iter().sum::<f64>() / ratios.len() as f64;

    // Same ballpark: within a factor of two of the loss-free model.
    assert!(
        simulated > analytic * 0.5 && simulated < analytic * 2.0 + 0.1,
        "simulated {simulated:.3} vs analytic {analytic:.3}"
    );
}

#[test]
fn epidemic_model_predicts_the_flooding_delay_scale() {
    let params = mixed(30, 3, 8_000);
    let model = EpidemicModel::from_scenario(&params);
    let analytic_delay = model.expected_delay();

    let r = Simulation::builder(params, ProtocolKind::Epidemic)
        .seed(1)
        .build()
        .run();
    assert!(r.delivered > 0, "flooding delivered nothing");
    // The simulator adds sleeping, MAC latency and queueing, so it is
    // slower than the loss-free fluid model — but the scale must agree
    // (within one order of magnitude).
    assert!(
        r.mean_delay_secs > analytic_delay * 0.5,
        "simulated faster than physics allows: {} vs {analytic_delay}",
        r.mean_delay_secs
    );
    assert!(
        r.mean_delay_secs < analytic_delay * 20.0,
        "simulated delay {} way beyond the model {analytic_delay}",
        r.mean_delay_secs
    );
}

#[test]
fn orderings_agree_between_model_and_simulation() {
    // Both the model and the simulator must agree that flooding is faster
    // than direct transmission on the same scenario.
    let params = mixed(30, 2, 6_000);
    let model = EpidemicModel::from_scenario(&params);
    let analytic_direct =
        dftmsn::core::analysis::direct_expected_delay(model.lambda_ns, model.sinks);
    assert!(model.expected_delay() < analytic_direct);

    // Simulated *conditional* delays are biased (direct only delivers the
    // easy messages — the ZBR artifact the paper calls out), so compare
    // delivery ratios, where flooding must dominate direct transmission.
    let epidemic = Simulation::builder(params.clone(), ProtocolKind::Epidemic)
        .seed(2)
        .build()
        .run();
    let direct = Simulation::builder(params, ProtocolKind::Direct)
        .seed(2)
        .build()
        .run();
    assert!(
        epidemic.delivery_ratio() >= direct.delivery_ratio() - 0.05,
        "flooding ratio {:.3} fell behind direct {:.3}",
        epidemic.delivery_ratio(),
        direct.delivery_ratio()
    );
}

#[test]
fn more_sinks_shrink_both_model_and_simulated_delay() {
    let few = mixed(25, 1, 6_000);
    let many = mixed(25, 6, 6_000);
    let m_few = EpidemicModel::from_scenario(&few);
    let m_many = EpidemicModel::from_scenario(&many);
    assert!(m_many.expected_delay() < m_few.expected_delay());

    let s_few = Simulation::builder(few, ProtocolKind::Opt)
        .seed(3)
        .build()
        .run();
    let s_many = Simulation::builder(many, ProtocolKind::Opt)
        .seed(3)
        .build()
        .run();
    if s_few.delivered > 20 && s_many.delivered > 20 {
        assert!(s_many.mean_delay_secs < s_few.mean_delay_secs);
    }
}
