//! Determinism contract of the sharded engine (DESIGN.md § 8).
//!
//! Sharding is a pure execution knob: for ANY shard count the run's
//! results — every golden counter, every f64 bit of delay and energy
//! accounting, every delivery record — must be bit-identical to the
//! single-shard engine's. The per-shard event lanes share one global
//! sequence counter, so pop order is provably lane-independent; these
//! tests enforce the end-to-end consequence across protocol variants,
//! both mobility engines, fault plans and mid-run re-sharding.
//!
//! A failure here always means a shard-dependent side effect leaked into
//! simulation state — never a legitimate behaviour change.

use dftmsn::core::variants::ProtocolKind;
use dftmsn::prelude::*;

/// Busy pinned workload: dense enough that frames routinely cross the
/// column-band boundaries of a 4-shard split.
fn scenario() -> ScenarioParams {
    ScenarioParams::paper_default()
        .with_sensors(24)
        .with_sinks(2)
        .with_duration_secs(600)
}

/// One delivery record flattened to exact bits: (msg, created, delay, hops).
type DeliveryBits = (u64, u64, u64, u32);

/// Everything a run reports, flattened for exact comparison. f64s are
/// compared by bit pattern: "close" is not "identical".
fn fingerprint(r: &SimReport) -> (Vec<u64>, Vec<DeliveryBits>) {
    let counters = vec![
        r.generated,
        r.delivered,
        r.sink_receptions,
        r.frames_sent,
        r.collisions,
        r.attempts,
        r.multicasts,
        r.copies_sent,
        r.events_processed,
        r.mean_delay_secs.to_bits(),
        r.total_sensor_energy_j.to_bits(),
        r.avg_sensor_power_mw.to_bits(),
        r.faults.crashes,
        r.faults.recoveries,
        r.faults.frames_dropped,
    ];
    let deliveries = r
        .deliveries
        .iter()
        .map(|d| {
            (
                d.msg.0,
                d.created_secs.to_bits(),
                d.delay_secs.to_bits(),
                d.hops,
            )
        })
        .collect();
    (counters, deliveries)
}

fn run(kind: ProtocolKind, seed: u64, mode: MobilityMode, shards: usize) -> SimReport {
    Simulation::builder(scenario(), kind)
        .seed(seed)
        .mobility_mode(mode)
        .shards(shards)
        .build()
        .run()
}

#[test]
fn sharded_runs_match_single_shard_across_variants_and_modes() {
    for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
        for kind in [ProtocolKind::Opt, ProtocolKind::Epidemic, ProtocolKind::Zbr] {
            let single = run(kind, 7, mode, 1);
            for shards in [2, 4, 8] {
                let sharded = run(kind, 7, mode, shards);
                assert_eq!(
                    fingerprint(&sharded),
                    fingerprint(&single),
                    "{kind} {mode:?}: {shards}-shard run diverged from single-shard"
                );
            }
        }
    }
}

#[test]
fn sharded_faulted_runs_match_single_shard() {
    let plan = FaultPlan::node_failures(&scenario(), 0.3, Some(150.0), 13);
    for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
        let single = Simulation::builder(scenario(), ProtocolKind::Opt)
            .seed(5)
            .mobility_mode(mode)
            .faults(plan.clone())
            .build()
            .run();
        assert!(single.faults.crashes > 0, "{mode:?}: plan injected nothing");
        let sharded = Simulation::builder(scenario(), ProtocolKind::Opt)
            .seed(5)
            .mobility_mode(mode)
            .faults(plan.clone())
            .shards(4)
            .build()
            .run();
        assert_eq!(
            fingerprint(&sharded),
            fingerprint(&single),
            "{mode:?}: faulted 4-shard run diverged"
        );
    }
}

fn run_threaded(
    kind: ProtocolKind,
    seed: u64,
    mode: MobilityMode,
    shards: usize,
    threads: usize,
) -> SimReport {
    Simulation::builder(scenario(), kind)
        .seed(seed)
        .mobility_mode(mode)
        .shards(shards)
        .threads(threads)
        .build()
        .run()
}

#[test]
fn threaded_runs_match_sequential_across_variants_and_modes() {
    // Thread count is a pure execution knob exactly like the shard
    // count: bit-identical results for every value. The dense 24-node
    // world floods the interaction quarantine almost every interval, so
    // this exercises the drain/commit/fallback machinery end to end.
    for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
        for kind in [ProtocolKind::Opt, ProtocolKind::Epidemic, ProtocolKind::Zbr] {
            let single = run(kind, 7, mode, 1);
            for (shards, threads) in [(1, 2), (4, 8)] {
                let threaded = run_threaded(kind, 7, mode, shards, threads);
                assert_eq!(
                    fingerprint(&threaded),
                    fingerprint(&single),
                    "{kind} {mode:?}: {shards}-shard {threads}-thread run diverged"
                );
            }
        }
    }
}

#[test]
fn threaded_faulted_runs_match_sequential() {
    let plan = FaultPlan::node_failures(&scenario(), 0.3, Some(150.0), 13);
    for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
        let single = Simulation::builder(scenario(), ProtocolKind::Opt)
            .seed(5)
            .mobility_mode(mode)
            .faults(plan.clone())
            .build()
            .run();
        let threaded = Simulation::builder(scenario(), ProtocolKind::Opt)
            .seed(5)
            .mobility_mode(mode)
            .faults(plan.clone())
            .shards(4)
            .threads(8)
            .build()
            .run();
        assert_eq!(
            fingerprint(&threaded),
            fingerprint(&single),
            "{mode:?}: faulted 4-shard 8-thread run diverged"
        );
    }
}

/// Sparse scale-tier cell: low density and light traffic keep the
/// interaction quarantine subcritical in ticked mode, so intervals
/// genuinely split into parallel chunks instead of falling back.
fn sparse_scenario() -> ScenarioParams {
    let mut p = ScenarioParams::paper_default();
    let side = 150.0 * (600.0f64 / 100.0).sqrt();
    p.sensors = 600;
    p.sinks = 6;
    p.area_width_m = side;
    p.area_height_m = side;
    p.zone_cols = 12;
    p.zone_rows = 12;
    p.data_interval_secs = 720.0;
    p.mobility_tick_secs = 0.025;
    p.duration_secs = 60;
    p.validate().expect("sparse scenario must be valid");
    p
}

#[test]
fn sparse_threaded_runs_take_the_parallel_path_and_match() {
    for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
        let mut base = Simulation::builder(sparse_scenario(), ProtocolKind::Opt)
            .seed(21)
            .mobility_mode(mode)
            .build();
        while base.advance() {}
        let single = base.finish_partial();
        for (shards, threads) in [(1, 2), (4, 4)] {
            let mut sim = Simulation::builder(sparse_scenario(), ProtocolKind::Opt)
                .seed(21)
                .mobility_mode(mode)
                .shards(shards)
                .threads(threads)
                .build();
            while sim.advance() {}
            let stats = sim.exec_stats().clone();
            assert!(
                stats.total_intervals() > 0,
                "{mode:?}: the parallel executor never engaged"
            );
            if mode == MobilityMode::Ticked {
                // Ticked mode must actually split work: the sparse cell is
                // subcritical, so chunks — not fallbacks — carry events.
                assert!(
                    stats.parallel_events > 0,
                    "{mode:?} {threads}-thread: no events ran in parallel chunks \
                     (fallback={} bypass={} parallel={})",
                    stats.fallback_intervals,
                    stats.bypass_intervals,
                    stats.intervals,
                );
            }
            let report = sim.finish_partial();
            assert_eq!(
                fingerprint(&report),
                fingerprint(&single),
                "{mode:?}: sparse {shards}-shard {threads}-thread run diverged"
            );
        }
    }
}

#[test]
fn resharding_mid_run_preserves_lifetime_counters() {
    // Barriers and cross-shard frame counts are run-lifetime counters:
    // flipping the shard topology mid-run must carry them, not zero them.
    let mut sim = Simulation::builder(scenario(), ProtocolKind::Opt)
        .seed(3)
        .shards(4)
        .build();
    while sim.now().as_secs_f64() < 300.0 {
        if !sim.step() {
            break;
        }
    }
    let mid = sim.shard_stats();
    assert!(mid.barriers > 0, "no barrier fired in 300 s");
    sim.set_shards(2);
    let after = sim.shard_stats();
    assert!(
        after.barriers >= mid.barriers,
        "re-sharding reset the barrier counter ({} -> {})",
        mid.barriers,
        after.barriers
    );
    assert!(
        after.cross_shard_frames >= mid.cross_shard_frames,
        "re-sharding reset the cross-shard frame counter"
    );
    let _ = sim.finish_partial();
}

#[test]
fn resharding_mid_run_changes_nothing() {
    // Flip the shard count twice mid-run; pending events are re-filed
    // with their global order preserved, so the results cannot move.
    let single = run(ProtocolKind::Opt, 9, MobilityMode::Lazy, 1);
    let mut sim = Simulation::builder(scenario(), ProtocolKind::Opt)
        .seed(9)
        .mobility_mode(MobilityMode::Lazy)
        .build();
    let mut flipped = false;
    let mut flopped = false;
    loop {
        let t = sim.now().as_secs_f64();
        if !flipped && t >= 150.0 {
            sim.set_shards(6);
            flipped = true;
        }
        if !flopped && t >= 400.0 {
            sim.set_shards(2);
            flopped = true;
        }
        if !sim.step() {
            break;
        }
    }
    assert!(flipped && flopped, "run too short to exercise both flips");
    let report = sim.finish_partial();
    // finish_partial on an exhausted run covers the same horizon as run().
    assert_eq!(
        fingerprint(&report).0[..9],
        fingerprint(&single).0[..9],
        "mid-run re-sharding changed the counters"
    );
}

#[test]
fn resumed_checkpoints_reshard_cleanly() {
    // Checkpoint a single-shard run, resume, then fan out to 4 shards:
    // the continuation must match the uninterrupted single-shard twin.
    // (The shard count is never serialized — restored sims come up
    // single-lane and re-shard on demand.)
    let single = run(ProtocolKind::Opt, 11, MobilityMode::Ticked, 1);
    let mut part = Simulation::builder(scenario(), ProtocolKind::Opt)
        .seed(11)
        .mobility_mode(MobilityMode::Ticked)
        .shards(4)
        .build();
    while part.now().as_secs_f64() < 300.0 {
        if !part.step() {
            break;
        }
    }
    let bytes = part.checkpoint_bytes();
    drop(part);
    let (mut resumed, _) = Simulation::resume_from_bytes(&bytes).expect("resume");
    assert_eq!(
        resumed.shard_stats().shards,
        1,
        "shard count leaked into the checkpoint"
    );
    resumed.set_shards(4);
    let report = resumed.run();
    assert_eq!(
        fingerprint(&report),
        fingerprint(&single),
        "resume → re-shard continuation diverged"
    );
}

#[test]
fn shard_telemetry_reflects_the_topology() {
    let sim = Simulation::builder(scenario(), ProtocolKind::Opt)
        .seed(3)
        .shards(4)
        .build();
    let before = sim.shard_stats();
    assert!(before.shards >= 2);
    assert_eq!(before.barriers, 0);
    let mut sim = sim;
    while sim.step() {}
    let after = sim.shard_stats();
    assert!(after.barriers > 0, "no epoch barrier fired in a 600 s run");
    assert!(
        after.cross_shard_frames > 0,
        "a dense 24-node world should mirror some frames across bands"
    );
    let _ = sim.finish_partial();
}
