//! Checkpoint/resume determinism sweep: snapshotting a run at a random
//! event boundary and resuming from the bytes must reproduce the
//! uninterrupted run *exactly* — every golden counter, every f64 bit of
//! delay and energy accounting, every delivery record, and every byte of
//! the windowed observe JSONL stream — for every protocol variant, across
//! seeds, under both the ticked and lazy mobility engines.
//!
//! The checkpoint instant is drawn from a seeded [`SimRng`] per
//! combination, so the suite probes a spread of boundaries (early,
//! mid-run, late) while staying fully reproducible. If a future change
//! legitimately alters simulation outcomes, this suite stays green — it
//! only compares a resumed run against its own uninterrupted twin; a
//! failure here always means resume lost or invented state.

use dftmsn::core::variants::ProtocolKind;
use dftmsn::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Shared byte sink for capturing the observe stream from both the
/// original and the resumed recorder.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A small but busy pinned workload: large enough that hundreds of MAC
/// cycles, queue evictions and sleep adaptations happen before and after
/// any checkpoint boundary, small enough to sweep 24 combinations in a
/// debug test run.
fn scenario() -> ScenarioParams {
    ScenarioParams::paper_default()
        .with_sensors(16)
        .with_sinks(2)
        .with_duration_secs(600)
}

const OBSERVE_WINDOW_SECS: f64 = 50.0;

/// The counters every variant must reproduce bit-for-bit across a
/// checkpoint/resume cycle.
fn golden(r: &SimReport) -> [u64; 8] {
    [
        r.generated,
        r.delivered,
        r.sink_receptions,
        r.frames_sent,
        r.collisions,
        r.attempts,
        r.multicasts,
        r.copies_sent,
    ]
}

fn build(
    kind: ProtocolKind,
    seed: u64,
    mode: MobilityMode,
    out: SharedBuf,
) -> (Simulation, MetricsRecorder) {
    let recorder = MetricsRecorder::new(OBSERVE_WINDOW_SECS)
        .streaming_only()
        .with_output(Box::new(out));
    let sim = Simulation::builder(scenario(), kind)
        .seed(seed)
        .mobility_mode(mode)
        .observe(recorder.clone())
        .build();
    (sim, recorder)
}

/// Runs one (variant, seed, mode) combination: uninterrupted twin vs.
/// checkpoint-at-`fraction`-of-the-run + resume, comparing reports and
/// observe streams bit-for-bit.
fn check_combo(kind: ProtocolKind, seed: u64, mode: MobilityMode, fraction: f64) {
    let label = format!("{kind:?} seed {seed} {mode:?} ckpt@{fraction:.3}");

    // The uninterrupted twin.
    let full_buf = SharedBuf::default();
    let (full_sim, _) = build(kind, seed, mode, full_buf.clone());
    let full = full_sim.run();

    // The interrupted run: step to the first event boundary at or past
    // the checkpoint instant, snapshot, and drop it.
    let part_buf = SharedBuf::default();
    let (mut part_sim, part_rec) = build(kind, seed, mode, part_buf.clone());
    let t_ckpt = fraction * scenario().duration_secs as f64;
    while part_sim.now().as_secs_f64() < t_ckpt {
        if !part_sim.step() {
            break;
        }
    }
    let bytes = part_sim.checkpoint_bytes();
    let cursor = part_rec.bytes_written() as usize;
    let head = part_buf.contents()[..cursor].to_vec();
    drop(part_sim);

    // Resume from the bytes and finish the run.
    let (resumed_sim, resumed_rec) =
        Simulation::resume_from_bytes(&bytes).unwrap_or_else(|e| panic!("{label}: resume: {e}"));
    let tail_buf = SharedBuf::default();
    let resumed_rec = resumed_rec
        .unwrap_or_else(|| panic!("{label}: checkpoint lost the observer"))
        .with_output(Box::new(tail_buf.clone()));
    let _ = &resumed_rec;
    let resumed = resumed_sim.run();

    // Golden counters and exact accounting.
    assert_eq!(
        golden(&resumed),
        golden(&full),
        "{label}: counters diverged"
    );
    assert_eq!(
        resumed.events_processed, full.events_processed,
        "{label}: event count diverged"
    );
    assert_eq!(
        resumed.mean_delay_secs.to_bits(),
        full.mean_delay_secs.to_bits(),
        "{label}: mean delay diverged"
    );
    assert_eq!(
        resumed.total_sensor_energy_j.to_bits(),
        full.total_sensor_energy_j.to_bits(),
        "{label}: energy accounting diverged"
    );
    assert_eq!(
        resumed.deliveries, full.deliveries,
        "{label}: deliveries diverged"
    );

    // The observe stream: checkpointed prefix + resumed suffix must be
    // byte-identical to the uninterrupted stream.
    let mut stitched = head;
    stitched.extend_from_slice(&tail_buf.contents());
    assert_eq!(
        stitched,
        full_buf.contents(),
        "{label}: observe stream not byte-identical"
    );
}

/// Draws a per-combination checkpoint fraction in [0.15, 0.85) from a
/// seeded RNG, so boundaries vary across the sweep but never between CI
/// runs.
fn fraction_for(rng: &mut SimRng) -> f64 {
    rng.gen_range_f64(0.15, 0.85)
}

#[test]
fn every_variant_resumes_bit_identically_under_ticked_mobility() {
    let mut rng = SimRng::seed_from(0xC4EC_0001);
    for kind in ProtocolKind::ALL {
        let fraction = fraction_for(&mut rng);
        check_combo(kind, 1, MobilityMode::Ticked, fraction);
    }
}

#[test]
fn every_variant_resumes_bit_identically_under_lazy_mobility() {
    let mut rng = SimRng::seed_from(0xC4EC_0002);
    for kind in ProtocolKind::ALL {
        let fraction = fraction_for(&mut rng);
        check_combo(kind, 1, MobilityMode::Lazy, fraction);
    }
}

#[test]
fn second_seed_resumes_bit_identically_in_both_modes() {
    let mut rng = SimRng::seed_from(0xC4EC_0003);
    for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
        for kind in [ProtocolKind::Opt, ProtocolKind::Zbr, ProtocolKind::Epidemic] {
            let fraction = fraction_for(&mut rng);
            check_combo(kind, 42, mode, fraction);
        }
    }
}

/// Golden `dftmsn-ckpt/1` fixture: a mid-run snapshot (OPT, 16 sensors,
/// 2 sinks, 800 s, seed 7, checkpointed at the first event boundary past
/// 450 s) committed under `tests/fixtures/`. Resuming it must still work
/// on every future build of this workspace — this is the format-stability
/// contract of the snapshot layout.
///
/// If a PR intentionally changes either the checkpoint format or protocol
/// behaviour, regenerate the fixture and these goldens, and say so in the
/// change notes:
///
/// ```text
/// cargo run -p dftmsn-cli -- run --protocol OPT --sensors 16 --sinks 2 \
///     --duration 800 --seed 7 \
///     --checkpoint tests/fixtures/golden-opt-seed7.ckpt --checkpoint-every 450
/// ```
///
/// (the run completes; the file keeps the last periodic snapshot), then
/// copy the counters from the resumed run.
#[test]
fn committed_golden_fixture_still_resumes() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/golden-opt-seed7.ckpt");
    let resumed: Resumed =
        Simulation::resume(&path).expect("golden fixture must decode on every build");
    assert!(!resumed.from_backup, "fixture resumed from a .bak?");
    let sim = resumed.sim;
    let t = sim.now().as_secs_f64();
    assert!(
        (450.0..=500.0).contains(&t),
        "fixture should snapshot just past 450 s, got {t}"
    );
    let report = sim.run();
    assert_eq!(
        golden(&report),
        [92, 41, 42, 5040, 1, 2429, 44, 44],
        "fixture continuation diverged from its recorded goldens"
    );
    assert_eq!(report.events_processed, 16289);
    assert_eq!(
        report.mean_delay_secs.to_bits(),
        204.358_425_463_414_62_f64.to_bits()
    );
}

#[test]
fn faulted_runs_resume_bit_identically() {
    // Faults exercise the fault-plan cursor, the fault RNG stream and the
    // crash/recovery state machines across the checkpoint boundary.
    let scenario = scenario();
    let plan = FaultPlan::node_failures(&scenario, 0.3, Some(120.0), 9);
    for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
        let label = format!("faulted OPT {mode:?}");

        let full_sim = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
            .seed(5)
            .mobility_mode(mode)
            .faults(plan.clone())
            .build();
        let full = full_sim.run();
        assert!(full.faults.crashes > 0, "{label}: plan injected nothing");

        let mut part_sim = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
            .seed(5)
            .mobility_mode(mode)
            .faults(plan.clone())
            .build();
        while part_sim.now().as_secs_f64() < 300.0 {
            if !part_sim.step() {
                break;
            }
        }
        let bytes = part_sim.checkpoint_bytes();
        let (resumed_sim, _) =
            Simulation::resume_from_bytes(&bytes).unwrap_or_else(|e| panic!("{label}: {e}"));
        let resumed = resumed_sim.run();
        assert_eq!(
            golden(&resumed),
            golden(&full),
            "{label}: counters diverged"
        );
        assert_eq!(
            resumed.faults, full.faults,
            "{label}: fault counters diverged"
        );
    }
}

#[test]
fn adversarial_runs_resume_bit_identically() {
    // Behavior changes ride the fault plan; the checkpoint's behavior
    // tail frame must restore the per-node table, the behavioral
    // counters, and the lifetime anchors so the resumed run is
    // bit-identical — including a behavior whose onset (selfish@400)
    // lies *beyond* the checkpoint instant, so it fires post-resume.
    let scenario = scenario();
    let mut plan =
        dftmsn::core::behavior::parse_spec("liar=0.2;selfish=0.2@400", &scenario, 5).unwrap();
    plan.extend(FaultPlan::node_failures(&scenario, 0.2, Some(120.0), 9));
    for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
        let label = format!("adversarial OPT {mode:?}");

        let full = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
            .seed(5)
            .mobility_mode(mode)
            .faults(plan.clone())
            .build()
            .run();
        assert!(
            full.faults.behavior_changes > 0 && full.faults.crashes > 0,
            "{label}: plan injected nothing"
        );

        let mut part_sim = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
            .seed(5)
            .mobility_mode(mode)
            .faults(plan.clone())
            .build();
        while part_sim.now().as_secs_f64() < 300.0 {
            if !part_sim.step() {
                break;
            }
        }
        let bytes = part_sim.checkpoint_bytes();
        let (resumed_sim, _) =
            Simulation::resume_from_bytes(&bytes).unwrap_or_else(|e| panic!("{label}: {e}"));
        let resumed = resumed_sim.run();
        assert_eq!(
            golden(&resumed),
            golden(&full),
            "{label}: counters diverged"
        );
        assert_eq!(
            resumed.faults, full.faults,
            "{label}: fault/behavior counters diverged"
        );
        assert_eq!(
            resumed.lifetime, full.lifetime,
            "{label}: lifetime block diverged"
        );
        assert_eq!(
            resumed.mean_delay_secs.to_bits(),
            full.mean_delay_secs.to_bits(),
            "{label}: delay bits diverged"
        );
    }
}

#[test]
fn parallel_faulted_runs_checkpoint_and_resume_bit_identically() {
    // A checkpoint taken at an interval boundary of the parallel executor
    // (threads > 1 drives `advance` through whole event intervals) must
    // resume into the exact bit-stream of an uninterrupted sequential
    // run, faults included. The thread count — like the shard count — is
    // never serialized; restored sims come up single-threaded and opt
    // back in.
    let scenario = scenario();
    let plan = FaultPlan::node_failures(&scenario, 0.3, Some(120.0), 9);
    for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
        let label = format!("parallel faulted OPT {mode:?}");

        let full = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
            .seed(5)
            .mobility_mode(mode)
            .faults(plan.clone())
            .build()
            .run();
        assert!(full.faults.crashes > 0, "{label}: plan injected nothing");

        let mut part = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
            .seed(5)
            .mobility_mode(mode)
            .faults(plan.clone())
            .threads(8)
            .build();
        while part.now().as_secs_f64() < 300.0 {
            if !part.advance() {
                break;
            }
        }
        let bytes = part.checkpoint_bytes();
        drop(part);

        let (mut resumed_sim, _) =
            Simulation::resume_from_bytes(&bytes).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(
            resumed_sim.threads(),
            1,
            "{label}: thread count leaked into the checkpoint"
        );
        resumed_sim.set_threads(8);
        let resumed = resumed_sim.run();
        assert_eq!(
            golden(&resumed),
            golden(&full),
            "{label}: counters diverged"
        );
        assert_eq!(
            resumed.faults, full.faults,
            "{label}: fault counters diverged"
        );
        assert_eq!(
            resumed.mean_delay_secs.to_bits(),
            full.mean_delay_secs.to_bits(),
            "{label}: delay accounting diverged"
        );
        assert_eq!(
            resumed.total_sensor_energy_j.to_bits(),
            full.total_sensor_energy_j.to_bits(),
            "{label}: energy accounting diverged"
        );
    }
}

/// Steps `sim` until `pred` holds at an event boundary past `t_min`
/// seconds, returning false if the run ends first.
fn step_until(sim: &mut Simulation, t_min: f64, mut pred: impl FnMut(&Simulation) -> bool) -> bool {
    loop {
        if sim.now().as_secs_f64() >= t_min && pred(sim) {
            return true;
        }
        if !sim.step() {
            return false;
        }
    }
}

#[test]
fn checkpoints_taken_mid_frame_resume_bit_identically() {
    // The seam: a `begin_tx` has fired but its (unguarded, not
    // epoch-cancelled) `TxEnd` is still pending. The snapshot must carry
    // the in-flight transmission and the resumed queue must fire the
    // `TxEnd` at the exact original instant. Faults keep the plan cursor
    // and crash paths in play across the boundary.
    let scenario = scenario();
    let plan = FaultPlan::node_failures(&scenario, 0.3, Some(120.0), 9);
    let full = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
        .seed(5)
        .mobility_mode(MobilityMode::Ticked)
        .faults(plan.clone())
        .build()
        .run();

    let mut part = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
        .seed(5)
        .mobility_mode(MobilityMode::Ticked)
        .faults(plan.clone())
        .build();
    assert!(
        step_until(&mut part, 200.0, |s| s.airborne_frames() > 0),
        "no frame was mid-air at any boundary past 200 s"
    );
    assert!(part.airborne_frames() > 0);
    let bytes = part.checkpoint_bytes();
    drop(part);

    let (resumed_sim, _) = Simulation::resume_from_bytes(&bytes).expect("mid-frame resume");
    assert!(
        resumed_sim.airborne_frames() > 0,
        "the in-flight frame was lost across the checkpoint"
    );
    let resumed = resumed_sim.run();
    assert_eq!(
        golden(&resumed),
        golden(&full),
        "mid-frame: counters diverged"
    );
    assert_eq!(
        resumed.mean_delay_secs.to_bits(),
        full.mean_delay_secs.to_bits(),
        "mid-frame: delay accounting diverged"
    );
    assert_eq!(
        resumed.faults, full.faults,
        "mid-frame: fault counters diverged"
    );
}

#[test]
fn checkpoints_taken_mid_coast_lease_resume_bit_identically() {
    // The seam PR 6 introduced: ticked nodes coast on straight-line
    // leases whose replay into the models is deferred. `checkpoint_bytes`
    // settles every lease before serializing; the resumed run re-grants
    // from the settled models exactly as an uninterrupted run re-grants
    // after its own settle — this proves the settle/regrant round trip is
    // invisible, faults included.
    let scenario = scenario();
    let plan = FaultPlan::node_failures(&scenario, 0.25, Some(150.0), 17);
    let full = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
        .seed(8)
        .mobility_mode(MobilityMode::Ticked)
        .faults(plan.clone())
        .build()
        .run();

    let mut part = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
        .seed(8)
        .mobility_mode(MobilityMode::Ticked)
        .faults(plan.clone())
        .build();
    assert!(
        step_until(&mut part, 250.0, |s| {
            s.coasting_nodes().expect("ticked mode") > scenario.sensors / 2
        }),
        "most of the population should be mid-lease at a typical boundary"
    );
    let mid_lease = part.coasting_nodes().expect("ticked mode");
    assert!(mid_lease > 0, "checkpoint instant was not mid-lease");
    let bytes = part.checkpoint_bytes();
    drop(part);

    let (resumed_sim, _) = Simulation::resume_from_bytes(&bytes).expect("mid-lease resume");
    let resumed = resumed_sim.run();
    assert_eq!(
        golden(&resumed),
        golden(&full),
        "mid-lease: counters diverged"
    );
    assert_eq!(
        resumed.total_sensor_energy_j.to_bits(),
        full.total_sensor_energy_j.to_bits(),
        "mid-lease: energy accounting diverged"
    );
    assert_eq!(
        resumed.deliveries, full.deliveries,
        "mid-lease: deliveries diverged"
    );
}
