//! Property-based hardening of the fault-plan text grammar (PR 10, S1).
//!
//! Two contracts, exercised on arbitrary inputs:
//!
//! * every well-formed plan round-trips `format_spec` → `parse` exactly —
//!   the explicit grammar is a faithful serialization of plan data;
//! * `parse` (and `behavior::parse_spec`) never panic: arbitrary directive
//!   soup yields `Ok` or `InvalidFaultPlan`, and an `Err` never leaks a
//!   partial plan to the caller (the `Result` is the only output channel).

use dftmsn::core::behavior::{self, NodeBehavior};
use dftmsn::core::faults::{FaultKind, FaultPlan};
use dftmsn::core::params::ScenarioParams;
use dftmsn::radio::ids::NodeId;
use proptest::prelude::*;

const SENSORS: usize = 20;
const SINKS: usize = 2;

fn scenario() -> ScenarioParams {
    ScenarioParams::paper_default()
        .with_sensors(SENSORS)
        .with_sinks(SINKS)
        .with_duration_secs(2000)
}

/// A probability with exact decimal representation (keeps the focus on
/// grammar round-tripping, though `{:?}` would round-trip any f64).
fn prob() -> impl Strategy<Value = f64> {
    (0u32..=1000).prop_map(|x| f64::from(x) / 1000.0)
}

/// A non-negative finite firing time, including fractional seconds.
fn time() -> impl Strategy<Value = f64> {
    (0u32..=200_000).prop_map(|x| f64::from(x) / 10.0)
}

/// One arbitrary *valid* event against [`scenario`]: every `FaultKind`
/// variant, ids in role-correct ranges, probabilities in `[0, 1]`.
fn valid_event() -> impl Strategy<Value = (f64, FaultKind)> {
    let ids = (0u8..9, 0usize..SENSORS, 0usize..(SENSORS + SINKS));
    (ids, prob(), time(), 0usize..5).prop_map(|((sel, sensor, node), p, t, btag)| {
        let sink = NodeId(SENSORS + sensor % SINKS);
        let kind = match sel {
            0 => FaultKind::NodeCrash(NodeId(sensor)),
            1 => FaultKind::NodeRecover(NodeId(sensor)),
            2 => FaultKind::BatteryDeath(NodeId(sensor)),
            3 => FaultKind::LinkDegrade {
                a: NodeId(node),
                b: NodeId((node + 1) % (SENSORS + SINKS)),
                drop_prob: p,
            },
            4 => FaultKind::GlobalLinkDegrade { drop_prob: p },
            5 => FaultKind::DataCorruption {
                node: NodeId(node),
                prob: p,
            },
            6 => FaultKind::SinkDown(sink),
            7 => FaultKind::SinkUp(sink),
            _ => FaultKind::BehaviorChange {
                node: NodeId(sensor),
                behavior: NodeBehavior::ALL[btag],
            },
        };
        (t, kind)
    })
}

/// Bytes that keep the fuzz inputs inside the grammar's alphabet often
/// enough to reach the deep parse paths, plus junk to stress the rest.
const SOUP: &[u8] = b"0123456789.=@:;-+eExcrashlinkdropoutchurnbehavioselfgk ";

fn directive_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..SOUP.len(), 0..60)
        .prop_map(|ix| ix.into_iter().map(|i| SOUP[i] as char).collect())
}

proptest! {
    /// `parse(format_spec(plan))` reproduces any valid plan exactly —
    /// same events, same order, bit-equal times and probabilities.
    #[test]
    fn well_formed_plans_round_trip_through_format_spec(
        events in proptest::collection::vec(valid_event(), 0..25),
    ) {
        let s = scenario();
        let mut plan = FaultPlan::default();
        for (t, kind) in events {
            plan.push(t, kind);
        }
        prop_assert!(plan.validate(&s).is_ok());
        let text = plan.format_spec();
        let reparsed = FaultPlan::parse(&text, &s, 1);
        prop_assert_eq!(reparsed, Ok(plan), "spec was: {}", text);
    }

    /// Arbitrary directive soup never panics the parser; it returns a
    /// validated plan or an `InvalidFaultPlan`, nothing in between.
    #[test]
    fn fault_plan_parse_never_panics(spec in directive_soup(), seed in 0u64..64) {
        let s = scenario();
        if let Ok(plan) = FaultPlan::parse(&spec, &s, seed) {
            // Anything parse accepts must already satisfy validate — no
            // partially-checked plans escape.
            prop_assert!(plan.validate(&s).is_ok(), "spec was: {}", spec);
        }
    }

    /// Same contract for the `--behaviors` grammar.
    #[test]
    fn behavior_parse_spec_never_panics(spec in directive_soup(), seed in 0u64..64) {
        let s = scenario();
        if let Ok(plan) = behavior::parse_spec(&spec, &s, seed) {
            prop_assert!(plan.validate(&s).is_ok(), "spec was: {}", spec);
        }
    }
}
