//! Frozen determinism baseline for the engine hot-path overhaul.
//!
//! The slab event queue, the incremental spatial index, and the
//! zero-allocation protocol cycle are all pure performance work: they must
//! not change a single simulation outcome. These goldens were recorded
//! from the engine BEFORE those changes (BinaryHeap + HashSet queue, full
//! grid rebuild per mobility tick, per-cycle allocations) on a pinned
//! scenario, and every variant must keep reproducing them bit-for-bit.
//!
//! If a future PR changes protocol *behaviour* on purpose, it must
//! re-record these counters and say so in its change notes; a mismatch
//! from a performance PR is a bug in that PR.

use dftmsn::core::variants::ProtocolKind;
use dftmsn::prelude::*;

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
struct Golden {
    generated: u64,
    delivered: u64,
    sink_receptions: u64,
    frames_sent: u64,
    collisions: u64,
    attempts: u64,
    multicasts: u64,
    copies_sent: u64,
}

/// The pinned workload: 20 sensors, 2 sinks, 2 000 s, paper defaults.
fn pinned_scenario() -> ScenarioParams {
    ScenarioParams::paper_default()
        .with_sensors(20)
        .with_sinks(2)
        .with_duration_secs(2000)
}

/// Counters recorded from the pre-overhaul engine (seed commit 3c150d5,
/// with only the offline dependency shims applied).
const GOLDENS: [(ProtocolKind, u64, Golden); 12] = [
    (
        ProtocolKind::Opt,
        1,
        Golden {
            generated: 329,
            delivered: 259,
            sink_receptions: 323,
            frames_sent: 18584,
            collisions: 11,
            attempts: 8514,
            multicasts: 416,
            copies_sent: 416,
        },
    ),
    (
        ProtocolKind::Opt,
        42,
        Golden {
            generated: 348,
            delivered: 230,
            sink_receptions: 279,
            frames_sent: 18110,
            collisions: 3,
            attempts: 8399,
            multicasts: 347,
            copies_sent: 349,
        },
    ),
    (
        ProtocolKind::NoOpt,
        1,
        Golden {
            generated: 353,
            delivered: 260,
            sink_receptions: 295,
            frames_sent: 14687,
            collisions: 2,
            attempts: 6706,
            multicasts: 324,
            copies_sent: 324,
        },
    ),
    (
        ProtocolKind::NoOpt,
        42,
        Golden {
            generated: 345,
            delivered: 198,
            sink_receptions: 222,
            frames_sent: 14260,
            collisions: 2,
            attempts: 6628,
            multicasts: 255,
            copies_sent: 255,
        },
    ),
    (
        ProtocolKind::NoSleep,
        1,
        Golden {
            generated: 361,
            delivered: 309,
            sink_receptions: 1107,
            frames_sent: 107444,
            collisions: 77,
            attempts: 49987,
            multicasts: 2434,
            copies_sent: 2444,
        },
    ),
    (
        ProtocolKind::NoSleep,
        42,
        Golden {
            generated: 331,
            delivered: 278,
            sink_receptions: 849,
            frames_sent: 101285,
            collisions: 83,
            attempts: 47593,
            multicasts: 2038,
            copies_sent: 2056,
        },
    ),
    (
        ProtocolKind::Zbr,
        1,
        Golden {
            generated: 318,
            delivered: 241,
            sink_receptions: 249,
            frames_sent: 17410,
            collisions: 4,
            attempts: 8058,
            multicasts: 353,
            copies_sent: 353,
        },
    ),
    (
        ProtocolKind::Zbr,
        42,
        Golden {
            generated: 341,
            delivered: 223,
            sink_receptions: 223,
            frames_sent: 16811,
            collisions: 3,
            attempts: 7888,
            multicasts: 264,
            copies_sent: 264,
        },
    ),
    (
        ProtocolKind::Direct,
        1,
        Golden {
            generated: 332,
            delivered: 240,
            sink_receptions: 242,
            frames_sent: 16598,
            collisions: 2,
            attempts: 7814,
            multicasts: 240,
            copies_sent: 240,
        },
    ),
    (
        ProtocolKind::Direct,
        42,
        Golden {
            generated: 312,
            delivered: 190,
            sink_receptions: 191,
            frames_sent: 15871,
            collisions: 0,
            attempts: 7551,
            multicasts: 190,
            copies_sent: 190,
        },
    ),
    (
        ProtocolKind::Epidemic,
        1,
        Golden {
            generated: 331,
            delivered: 240,
            sink_receptions: 309,
            frames_sent: 18265,
            collisions: 26,
            attempts: 8435,
            multicasts: 345,
            copies_sent: 370,
        },
    ),
    (
        ProtocolKind::Epidemic,
        42,
        Golden {
            generated: 346,
            delivered: 217,
            sink_receptions: 275,
            frames_sent: 17844,
            collisions: 6,
            attempts: 8289,
            multicasts: 310,
            copies_sent: 333,
        },
    ),
];

fn observed(kind: ProtocolKind, seed: u64) -> Golden {
    let r = Simulation::builder(pinned_scenario(), kind)
        .seed(seed)
        .build()
        .run();
    Golden {
        generated: r.generated,
        delivered: r.delivered,
        sink_receptions: r.sink_receptions,
        frames_sent: r.frames_sent,
        collisions: r.collisions,
        attempts: r.attempts,
        multicasts: r.multicasts,
        copies_sent: r.copies_sent,
    }
}

#[test]
fn all_variants_reproduce_the_pre_overhaul_counters() {
    for (kind, seed, golden) in GOLDENS {
        let got = observed(kind, seed);
        assert_eq!(
            got, golden,
            "{kind} seed {seed}: engine outcome drifted from the recorded baseline"
        );
    }
}
