//! Policy-seam parity and competitor-policy golden baselines.
//!
//! Three guarantees for the `ForwardingPolicy` trait introduced by the
//! policy lab:
//!
//! 1. **Builtin parity** — routing the six builtin variants through the
//!    trait (`.policy(PolicySpec::Builtin)`) is bit-identical to the
//!    implicit path, for every variant, under both mobility engines and
//!    under fault injection. The trait is a seam, not a behaviour change.
//! 2. **Competitor goldens** — `TwoHopRelay` and `MeetingRate` reproduce
//!    pinned counters on the same 20-sensor/2-sink/2 000 s workload as
//!    `determinism_baseline`, so policy regressions surface exactly like
//!    engine regressions.
//! 3. **Checkpoint round-trip** — a parameterized (non-default) policy
//!    survives `checkpoint_bytes` → `resume_from_bytes` bit-identically,
//!    parameters and estimator state included.

use dftmsn::core::variants::ProtocolKind;
use dftmsn::prelude::*;

/// The pinned workload shared with `determinism_baseline`.
fn pinned_scenario() -> ScenarioParams {
    ScenarioParams::paper_default()
        .with_sensors(20)
        .with_sinks(2)
        .with_duration_secs(2000)
}

/// Smaller workload for the 6 × 2 parity sweep and the faulted runs.
fn parity_scenario() -> ScenarioParams {
    ScenarioParams::paper_default()
        .with_sensors(16)
        .with_sinks(2)
        .with_duration_secs(600)
}

fn golden(r: &SimReport) -> [u64; 8] {
    [
        r.generated,
        r.delivered,
        r.sink_receptions,
        r.frames_sent,
        r.collisions,
        r.attempts,
        r.multicasts,
        r.copies_sent,
    ]
}

// ---------------------------------------------------------------------------
// 1. Builtin parity through the trait.
// ---------------------------------------------------------------------------

#[test]
fn builtin_variants_are_bit_identical_through_the_trait() {
    for kind in ProtocolKind::ALL {
        for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
            let implicit = Simulation::builder(parity_scenario(), kind)
                .seed(9)
                .mobility_mode(mode)
                .build()
                .run();
            let via_trait = Simulation::builder(parity_scenario(), kind)
                .seed(9)
                .mobility_mode(mode)
                .policy(PolicySpec::Builtin)
                .build()
                .run();
            assert_eq!(
                implicit.to_json().render(),
                via_trait.to_json().render(),
                "{kind} {mode:?}: trait dispatch changed the outcome"
            );
        }
    }
}

#[test]
fn builtin_parity_holds_under_fault_injection() {
    let plan = FaultPlan::parse(
        "crash=0.25;linkdrop=0.1;corrupt=0.05",
        &parity_scenario(),
        7,
    )
    .expect("valid fault plan");
    for kind in ProtocolKind::ALL {
        let implicit = Simulation::builder(parity_scenario(), kind)
            .seed(11)
            .faults(plan.clone())
            .build()
            .run();
        let via_trait = Simulation::builder(parity_scenario(), kind)
            .seed(11)
            .faults(plan.clone())
            .policy(PolicySpec::Builtin)
            .build()
            .run();
        assert_eq!(
            implicit.to_json().render(),
            via_trait.to_json().render(),
            "{kind} faulted: trait dispatch changed the outcome"
        );
    }
}

// ---------------------------------------------------------------------------
// 2. Competitor-policy golden baselines.
// ---------------------------------------------------------------------------

/// Counters recorded when the policies first landed (pinned scenario,
/// default parameters: TwoHop budget 4; MeetingRate horizon 600 s,
/// debounce 5 s, β 0.3). Regenerate with
/// `cargo test --test policy_parity print_policy_goldens -- --ignored --nocapture`
/// and say so in the change notes if a PR alters them on purpose.
const POLICY_GOLDENS: [(&str, u64, [u64; 8]); 4] = [
    ("TWOHOP", 1, [341, 247, 289, 17685, 10, 8209, 312, 321]),
    ("TWOHOP", 42, [350, 221, 241, 18049, 2, 8509, 261, 262]),
    ("MEETRATE", 1, [324, 229, 231, 16908, 4, 7901, 290, 290]),
    ("MEETRATE", 42, [334, 225, 227, 16729, 3, 7831, 276, 276]),
];

fn spec_for(label: &str) -> PolicySpec {
    match label {
        "TWOHOP" => PolicySpec::parse("twohop").unwrap(),
        "MEETRATE" => PolicySpec::parse("meetrate").unwrap(),
        other => panic!("unknown policy label {other}"),
    }
}

fn observed_policy(label: &str, seed: u64) -> SimReport {
    Simulation::builder(pinned_scenario(), ProtocolKind::Opt)
        .seed(seed)
        .policy(spec_for(label))
        .build()
        .run()
}

#[test]
fn competitor_policies_reproduce_their_goldens() {
    for (label, seed, want) in POLICY_GOLDENS {
        let r = observed_policy(label, seed);
        assert_eq!(r.protocol, label, "report must carry the policy label");
        assert!(r.delivered > 0, "{label} seed {seed}: delivered nothing");
        assert_eq!(
            golden(&r),
            want,
            "{label} seed {seed}: policy outcome drifted from the recorded baseline"
        );
    }
}

#[test]
fn competitor_policies_are_deterministic_per_seed() {
    for label in ["TWOHOP", "MEETRATE"] {
        let a = observed_policy(label, 5);
        let b = observed_policy(label, 5);
        assert_eq!(
            a.to_json().render(),
            b.to_json().render(),
            "{label}: same seed must reproduce bit-identically"
        );
    }
}

/// Regeneration helper for `POLICY_GOLDENS` (ignored; run explicitly).
#[test]
#[ignore = "golden regeneration helper, not a check"]
fn print_policy_goldens() {
    for (label, seed, _) in POLICY_GOLDENS {
        let r = observed_policy(label, seed);
        println!("(\"{label}\", {seed}, {:?}),", golden(&r));
    }
}

// ---------------------------------------------------------------------------
// 3. Checkpoint round-trip of parameterized policies.
// ---------------------------------------------------------------------------

fn check_policy_roundtrip(spec: PolicySpec, seed: u64, fraction: f64) {
    let label = format!("{spec:?} seed {seed} ckpt@{fraction:.2}");
    let scenario = parity_scenario();

    let full = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
        .seed(seed)
        .policy(spec)
        .build()
        .run();

    let mut part = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
        .seed(seed)
        .policy(spec)
        .build();
    let t_ckpt = fraction * scenario.duration_secs as f64;
    while part.now().as_secs_f64() < t_ckpt {
        if !part.step() {
            break;
        }
    }
    let bytes = part.checkpoint_bytes();
    drop(part);

    let (resumed_sim, _) =
        Simulation::resume_from_bytes(&bytes).unwrap_or_else(|e| panic!("{label}: resume: {e}"));
    assert_eq!(
        resumed_sim.policy_spec(),
        spec,
        "{label}: resume lost the policy parameters"
    );
    let resumed = resumed_sim.run();

    assert_eq!(
        golden(&resumed),
        golden(&full),
        "{label}: counters diverged"
    );
    assert_eq!(
        resumed.events_processed, full.events_processed,
        "{label}: event count diverged"
    );
    assert_eq!(
        resumed.mean_delay_secs.to_bits(),
        full.mean_delay_secs.to_bits(),
        "{label}: mean delay diverged"
    );
    assert_eq!(
        resumed.total_sensor_energy_j.to_bits(),
        full.total_sensor_energy_j.to_bits(),
        "{label}: energy accounting diverged"
    );
}

#[test]
fn twohop_checkpoint_roundtrips_with_custom_budget() {
    for fraction in [0.2, 0.6] {
        check_policy_roundtrip(PolicySpec::TwoHop { budget: 3 }, 13, fraction);
    }
}

#[test]
fn meetrate_checkpoint_roundtrips_with_custom_estimator() {
    let spec = PolicySpec::MeetingRate {
        horizon_secs: 300.0,
        debounce_secs: 4.0,
        beta: 0.5,
    };
    for fraction in [0.25, 0.7] {
        check_policy_roundtrip(spec, 17, fraction);
    }
}

#[test]
fn builtin_checkpoint_roundtrips_through_the_policy_frame() {
    check_policy_roundtrip(PolicySpec::Builtin, 19, 0.4);
}

#[test]
fn policy_spec_survives_the_builder() {
    let sim = Simulation::builder(parity_scenario(), ProtocolKind::Opt)
        .seed(1)
        .policy(PolicySpec::TwoHop { budget: 7 })
        .build();
    assert_eq!(sim.policy_spec(), PolicySpec::TwoHop { budget: 7 });
}
