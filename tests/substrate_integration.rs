//! Integration tests of the substrates working together — mobility with
//! the spatial index, the medium with energy metering — below the level
//! of a full protocol simulation.

use dftmsn::mobility::geom::{Bounds, Vec2};
use dftmsn::mobility::grid_index::SpatialGrid;
use dftmsn::mobility::models::{MobilityModel, ZoneMobility};
use dftmsn::mobility::zones::{ZoneGrid, ZoneId};
use dftmsn::radio::channel::ChannelParams;
use dftmsn::radio::energy::{EnergyMeter, EnergyModel, RadioState};
use dftmsn::radio::ids::NodeId;
use dftmsn::radio::medium::{Frame, Medium};
use dftmsn::sim::rng::SimRng;
use dftmsn::sim::time::{SimDuration, SimTime};

#[test]
fn spatial_grid_stays_correct_while_nodes_move() {
    let area = Bounds::new(150.0, 150.0);
    let zones = ZoneGrid::new(area, 5, 5);
    let mut rng = SimRng::seed_from(42);
    let mut models: Vec<ZoneMobility> = (0..40)
        .map(|i| ZoneMobility::new(zones.clone(), ZoneId(i % 25), 0.0, 5.0, 0.2, &mut rng))
        .collect();
    let mut grid = SpatialGrid::new(area, 10.0);
    let mut out = Vec::new();

    for _step in 0..200 {
        for m in &mut models {
            m.advance(0.5, &mut rng);
        }
        let positions: Vec<Vec2> = models.iter().map(|m| m.position()).collect();
        grid.rebuild(&positions);
        for i in 0..positions.len() {
            grid.query_within(&positions, i, 10.0, &mut out);
            let brute: Vec<usize> = (0..positions.len())
                .filter(|&j| j != i && positions[j].distance(positions[i]) <= 10.0)
                .collect();
            assert_eq!(out, brute, "index diverged at node {i}");
        }
    }
}

#[test]
fn scripted_exchange_delivers_and_meters_energy() {
    // A hand-driven preamble/RTS/CTS-like exchange between three nodes,
    // checking both the medium outcomes and the integrated energy.
    let model = EnergyModel::berkeley_mote();
    let ch = ChannelParams::paper_default();
    let mut medium: Medium<&str> = Medium::new(3);
    let mut meters: Vec<EnergyMeter> = (0..3).map(|_| EnergyMeter::new(RadioState::Idle)).collect();

    let a = NodeId(0);
    let b = NodeId(1);
    let c = NodeId(2);
    medium.set_listening(b, true);
    medium.set_listening(c, true);

    // A transmits a 50-bit control frame to B and C.
    let t0 = SimTime::ZERO;
    meters[0].set_state(t0, RadioState::Tx, &model);
    let tx = medium.begin_tx(
        t0,
        Frame {
            src: a,
            bits: 50,
            payload: "rts",
        },
        &[b, c],
    );
    let t1 = t0 + ch.airtime(50);
    let out = medium.end_tx(t1, tx);
    meters[0].set_state(t1, RadioState::Idle, &model);
    assert_eq!(out.delivered_to, vec![b, c]);

    // B replies; C overhears.
    medium.set_listening(a, true);
    medium.set_listening(b, false);
    meters[1].set_state(t1, RadioState::Tx, &model);
    let tx = medium.begin_tx(
        t1,
        Frame {
            src: b,
            bits: 50,
            payload: "cts",
        },
        &[a, c],
    );
    let t2 = t1 + ch.airtime(50);
    let out = medium.end_tx(t2, tx);
    meters[1].set_state(t2, RadioState::Idle, &model);
    medium.set_listening(b, true);
    assert_eq!(out.delivered_to, vec![a, c]);

    // Energy: node A = 5 ms tx + 5 ms idle; node B = 5 ms idle + 5 ms tx.
    let total_a = meters[0].total_energy_j(t2, &model);
    let total_b = meters[1].total_energy_j(t2, &model);
    let expect = 0.005 * model.p_tx_w + 0.005 * model.p_idle_w;
    assert!((total_a - expect).abs() < 1e-12, "A energy {total_a}");
    assert!((total_b - expect).abs() < 1e-12, "B energy {total_b}");

    // Medium counters saw two frames, four deliveries, no collisions.
    let counters = medium.counters();
    assert_eq!(counters.frames_sent, 2);
    assert_eq!(counters.deliveries, 4);
    assert_eq!(counters.collisions, 0);
}

#[test]
fn hidden_terminal_collision_is_detected_at_the_victim() {
    // A and C cannot hear each other but both reach B: the classic hidden
    // terminal. Overlapping frames must corrupt at B only.
    let mut medium: Medium<u8> = Medium::new(3);
    let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
    medium.set_listening(b, true);

    let t0 = SimTime::ZERO;
    let tx_a = medium.begin_tx(
        t0,
        Frame {
            src: a,
            bits: 50,
            payload: 1,
        },
        &[b],
    );
    // C starts mid-flight — it never heard A (out of range).
    let t_mid = t0 + SimDuration::from_millis(2);
    let tx_c = medium.begin_tx(
        t_mid,
        Frame {
            src: c,
            bits: 50,
            payload: 2,
        },
        &[b],
    );

    let out_a = medium.end_tx(t0 + SimDuration::from_millis(5), tx_a);
    assert!(out_a.delivered_to.is_empty());
    assert_eq!(out_a.collided_at, vec![b]);
    let out_c = medium.end_tx(t_mid + SimDuration::from_millis(5), tx_c);
    assert!(
        out_c.delivered_to.is_empty(),
        "late frame must not resurrect"
    );
}

#[test]
fn zone_mobility_distributes_time_heterogeneously() {
    // Different home zones ⇒ different sink-zone exposure — the property
    // the paper's ξ heterogeneity rests on. A node homed in the sink's
    // zone must visit it far more often than one homed in a far corner.
    let area = Bounds::new(150.0, 150.0);
    let zones = ZoneGrid::new(area, 5, 5);
    let sink_zone = ZoneId(12); // centre
    let mut rng = SimRng::seed_from(7);
    let mut near = ZoneMobility::new(zones.clone(), sink_zone, 0.0, 5.0, 0.2, &mut rng);
    let mut far = ZoneMobility::new(zones.clone(), ZoneId(0), 0.0, 5.0, 0.2, &mut rng);

    let mut near_visits = 0u32;
    let mut far_visits = 0u32;
    for _ in 0..40_000 {
        near.advance(0.5, &mut rng);
        far.advance(0.5, &mut rng);
        if zones.zone_of(near.position()) == sink_zone {
            near_visits += 1;
        }
        if zones.zone_of(far.position()) == sink_zone {
            far_visits += 1;
        }
    }
    assert!(
        near_visits > 3 * far_visits.max(1),
        "expected strong home bias: near {near_visits} vs far {far_visits}"
    );
}

#[test]
fn airtime_and_meter_agree_on_transmit_energy() {
    // Transmitting n frames of b bits costs exactly n·airtime·P_tx extra.
    let model = EnergyModel::berkeley_mote();
    let ch = ChannelParams::paper_default();
    let mut meter = EnergyMeter::new(RadioState::Idle);
    let mut now = SimTime::ZERO;
    let frames = 20u64;
    for _ in 0..frames {
        meter.set_state(now, RadioState::Tx, &model);
        now += ch.airtime(1000);
        meter.set_state(now, RadioState::Idle, &model);
        now += SimDuration::from_millis(50);
    }
    let tx_j = meter.energy_in_state_j(RadioState::Tx);
    let expect = frames as f64 * 0.1 * model.p_tx_w;
    assert!((tx_j - expect).abs() < 1e-9, "tx energy {tx_j} vs {expect}");
}
