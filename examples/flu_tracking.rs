//! Flu-virus tracking — the paper's second motivating application
//! (Sec. 1): wearable sensors sample infection indicators and the health
//! authority needs periodic, statistically sufficient updates.
//!
//! The planning question this example answers: **how many collection
//! points (sinks) does the district need** before the protocol delivers
//! at least 90% of samples with an acceptable delay? It sweeps the sink
//! count and prints the crossover.

use dftmsn::prelude::*;

fn main() {
    let target = 0.90;
    println!(
        "flu tracking: sinks needed for ≥{:.0}% sample coverage\n",
        target * 100.0
    );
    println!(
        "{:>5} {:>10} {:>12} {:>12}",
        "sinks", "coverage", "delay (s)", "power (mW)"
    );
    let mut crossover = None;
    for sinks in 1..=8 {
        let params = ScenarioParams::paper_default()
            .with_sinks(sinks)
            .with_duration_secs(10_000);
        let r = Simulation::builder(params, ProtocolKind::Opt)
            .seed(3)
            .build()
            .run();
        println!(
            "{:>5} {:>9.1}% {:>12.0} {:>12.3}",
            sinks,
            r.delivery_ratio() * 100.0,
            r.mean_delay_secs,
            r.avg_sensor_power_mw
        );
        if crossover.is_none() && r.delivery_ratio() >= target {
            crossover = Some(sinks);
        }
    }
    match crossover {
        Some(s) => println!(
            "\n→ {s} collection point(s) reach the {:.0}% coverage target.",
            target * 100.0
        ),
        None => println!("\n→ the target was not reached within 8 sinks; extend the sweep."),
    }
}
