//! Pervasive air-quality monitoring — the paper's first motivating
//! application (Sec. 1).
//!
//! Wearable sensors carried by commuters sample the toxic-gas exposure of
//! their carriers; a few sinks sit at high-traffic locations (transit
//! hubs). The information base is statistical: what matters is how well
//! the *delivered* samples reconstruct the pollution field, and at what
//! energy cost per sensor.
//!
//! This example builds a two-source Gaussian plume over the district,
//! runs the full cross-layer protocol (OPT) against naive direct
//! transmission (DIRECT), and scores both with the sensing layer's
//! per-zone reconstruction error.

use dftmsn::core::sensing::{CoverageAnalysis, GaussianPlumeField};
use dftmsn::mobility::geom::Bounds;
use dftmsn::prelude::*;

fn main() {
    // A district of 150 commuters, 4 hubs, sampling every 2 minutes,
    // over a commute-length window (3 000 s).
    let params = ScenarioParams::paper_default()
        .with_sensors(150)
        .with_sinks(4)
        .with_duration_secs(3_000);
    let area = Bounds::new(params.area_width_m, params.area_height_m);
    let field = GaussianPlumeField::demo(area);
    let analysis = CoverageAnalysis::new(&params, &field);

    println!("air-quality monitoring: 150 wearables, 4 transit-hub sinks\n");
    println!(
        "{:<8} {:>9} {:>9} {:>11} {:>11} {:>12}",
        "scheme", "delivery", "coverage", "field NRMSE", "power (mW)", "J per sample"
    );
    for kind in [ProtocolKind::Opt, ProtocolKind::Direct] {
        let report = Simulation::builder(params.clone(), kind)
            .seed(7)
            .build()
            .run();
        let coverage = analysis.evaluate(&report);
        let joules_per_sample = if report.delivered > 0 {
            report.total_sensor_energy_j / report.delivered as f64
        } else {
            f64::INFINITY
        };
        println!(
            "{:<8} {:>8.1}% {:>8.0}% {:>11.3} {:>11.3} {:>12.3}",
            report.protocol,
            report.delivery_ratio() * 100.0,
            coverage.coverage() * 100.0,
            coverage.normalized_rmse(),
            report.avg_sensor_power_mw,
            joules_per_sample
        );
    }
    println!(
        "\nOPT relays samples through better-connected commuters: more zones \
         \nreport in, the reconstructed field error drops, and the per-sample \
         \nenergy stays in the same range — the Sec. 1 tradeoff, quantified."
    );
}
