//! A narrated walk through the protocol's building blocks (paper Sec. 3),
//! using the library API directly — no full simulation. Useful as a
//! guided tour of `dftmsn_core`'s data structures.

use dftmsn::core::delivery::DeliveryProb;
use dftmsn::core::ftd::Ftd;
use dftmsn::core::message::{Message, MessageId};
use dftmsn::core::neighbor::{select_receivers, Candidate};
use dftmsn::core::queue::FtdQueue;
use dftmsn::radio::ids::NodeId;
use dftmsn::sim::time::SimTime;

fn main() {
    // --- Eq. 1: the delivery probability ξ ------------------------------
    println!("== nodal delivery probability (Eq. 1) ==");
    let alpha = 0.25;
    let mut xi = DeliveryProb::ZERO;
    println!("fresh sensor:                       ξ = {:.4}", xi.value());
    xi.on_transmission(DeliveryProb::SINK, alpha);
    println!("after handing a message to a sink:  ξ = {:.4}", xi.value());
    xi.on_transmission(DeliveryProb::new(0.6), alpha);
    println!("after relaying via a ξ=0.6 node:    ξ = {:.4}", xi.value());
    xi.on_timeout(alpha);
    println!("after a silent Δ interval:          ξ = {:.4}", xi.value());

    // --- Eqs. 2–3: fault-tolerance degrees ------------------------------
    println!("\n== message fault tolerance (Eqs. 2-3) ==");
    let fresh = Ftd::NEW;
    let (sender_xi, phi) = (0.3, [0.7, 0.5]);
    println!("multicasting a fresh message from ξ={sender_xi} to receivers ξ={phi:?}:");
    for (j, &xi_j) in phi.iter().enumerate() {
        let others: Vec<f64> = phi
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != j)
            .map(|(_, &x)| x)
            .collect();
        let copy = fresh.receiver_copy(sender_xi, &others);
        println!(
            "  copy at receiver {j} (ξ={xi_j}): FTD = {:.4}  (Eq. 2)",
            copy.value()
        );
    }
    let retained = fresh.after_multicast(&phi);
    println!(
        "  sender's retained copy:      FTD = {:.4}  (Eq. 3)",
        retained.value()
    );

    // --- Sec. 3.1.2: FTD queue management --------------------------------
    println!("\n== FTD-ordered queue (Sec. 3.1.2) ==");
    let mut q = FtdQueue::new(4);
    for (id, ftd) in [(0u64, 0.6), (1, 0.1), (2, 0.9), (3, 0.3)] {
        q.insert(Message::sensed(MessageId(id), NodeId(0), SimTime::ZERO).with_ftd(Ftd::new(ftd)));
    }
    println!("queue after four inserts (head = most important):");
    for m in q.iter() {
        println!("  msg {:?}  FTD {:.2}", m.id, m.ftd.value());
    }
    let evicted =
        q.insert(Message::sensed(MessageId(4), NodeId(0), SimTime::ZERO).with_ftd(Ftd::new(0.2)));
    println!("inserting FTD 0.20 into the full queue → {evicted:?}");

    // --- Sec. 3.2.2: receiver selection ----------------------------------
    println!("\n== greedy receiver selection (Sec. 3.2.2, R = 0.95) ==");
    let candidates = [
        Candidate {
            id: NodeId(10),
            xi: 0.9,
            buffer_space: 12,
        },
        Candidate {
            id: NodeId(11),
            xi: 0.8,
            buffer_space: 3,
        },
        Candidate {
            id: NodeId(12),
            xi: 0.4,
            buffer_space: 40,
        },
        Candidate {
            id: NodeId(13),
            xi: 0.2,
            buffer_space: 0,
        },
    ];
    let sel = select_receivers(0.3, Ftd::NEW, &candidates, 0.95);
    for (id, ftd) in &sel.receivers {
        println!("  selected {id} with copy FTD {:.4}", ftd.value());
    }
    println!(
        "  combined delivery probability: {:.4} (threshold 0.95)",
        sel.combined_delivery
    );
    println!("\nthe ξ=0.4 candidate was skipped: the first two already exceed R;");
    println!("the ξ=0.2 one never qualified (no buffer space).");
}
