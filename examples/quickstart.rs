//! Quickstart: run one short DFT-MSN simulation and print the headline
//! metrics the paper evaluates.

use dftmsn::prelude::*;

fn main() {
    let params = ScenarioParams::paper_default().with_duration_secs(2000);
    println!("running OPT on the paper's default scenario (shortened)...");
    let report = Simulation::builder(params, ProtocolKind::Opt)
        .seed(42)
        .build()
        .run();
    println!("{}", report.summary());
    println!("delivery ratio : {:.1}%", report.delivery_ratio() * 100.0);
    println!("avg power      : {:.3} mW", report.avg_sensor_power_mw);
    println!("mean delay     : {:.0} s", report.mean_delay_secs);
    println!("attempts       : {}", report.attempts);
    println!("multicasts     : {}", report.multicasts);
    println!("collisions     : {}", report.collisions);
    println!("mean final xi  : {:.3}", report.mean_final_xi);
}
