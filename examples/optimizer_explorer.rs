//! Explore the Sec. 4 optimizers interactively-ish: prints how the Eq. 13
//! τ_max search and the Eq. 14 contention-window search react to the
//! neighborhood, and how the Eq. 6 sleep period reacts to activity.

use dftmsn::core::contention::{
    cts_collision_probability, optimize_cts_window, optimize_tau_max, rts_collision_probability,
    sigma,
};
use dftmsn::core::params::ProtocolParams;
use dftmsn::core::sleep::SleepController;

fn main() {
    let p = ProtocolParams::paper_default();

    println!(
        "== Eq. 13: minimal tau_max per neighborhood (target γ ≤ {}) ==",
        p.tau_collision_target
    );
    let neighborhoods: [(&str, Vec<f64>); 4] = [
        ("lone node", vec![0.3]),
        ("two mid-ξ contenders", vec![0.3, 0.4]),
        ("crowded mixed cell", vec![0.2, 0.3, 0.5, 0.7, 0.9]),
        ("cold-start cell (all ξ≈0)", vec![0.01, 0.01, 0.01]),
    ];
    for (name, xis) in &neighborhoods {
        let tau = optimize_tau_max(xis, p.tau_collision_target, p.tau_max_cap_slots);
        let sigmas: Vec<u64> = xis.iter().map(|&x| sigma(x, tau)).collect();
        let gamma = rts_collision_probability(&sigmas);
        println!(
            "  {name:<28} τ_max = {tau:>2} slots  →  γ = {gamma:.3}{}",
            if gamma > p.tau_collision_target {
                "  (cap hit: infeasible)"
            } else {
                ""
            }
        );
    }

    println!("\n== Eq. 14: minimal contention window per expected repliers ==");
    for n in 1..=8u64 {
        let w = optimize_cts_window(n, p.cts_collision_target, p.cts_window_cap);
        println!(
            "  n = {n}  →  W = {w:>2} slots  (γo = {:.3})",
            cts_collision_probability(n, w)
        );
    }

    println!("\n== Eq. 6: sleep period vs recent success (urgency α = 0) ==");
    for successes in (0..=10).rev() {
        let mut ctl = SleepController::new(p.history_window_s);
        for i in 0..p.history_window_s {
            ctl.record_cycle(i < successes);
        }
        println!(
            "  ρ = {:>4.2}  →  T = {:>6.2} s",
            ctl.rho(),
            ctl.sleep_duration(0.0, &p).as_secs_f64()
        );
    }
    println!(
        "\nbounds: T_min = {} s, T_max = {:.1} s (Eq. 8)",
        p.t_min_secs,
        p.t_max().as_secs_f64()
    );
}
