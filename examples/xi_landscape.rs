//! Visualize the delivery-probability gradient (Eq. 1) that routing
//! climbs: run OPT, average each sensor's final ξ by home zone, and draw
//! the zone grid as a heatmap. Sinks sit at zones 4, 12 and 20 of the
//! 5×5 grid — the bright cells should cluster around them.

use dftmsn::core::sensing::home_zone_assignment;
use dftmsn::metrics::viz::{heatmap, sparkline};
use dftmsn::prelude::*;

fn main() {
    let params = ScenarioParams::paper_default().with_duration_secs(8_000);
    let zones = params.zone_cols * params.zone_rows;
    println!(
        "running OPT: {} sensors, {} sinks, {} s...",
        params.sensors, params.sinks, params.duration_secs
    );
    let report = Simulation::builder(params.clone(), ProtocolKind::Opt)
        .seed(21)
        .build()
        .run();
    println!("{}\n", report.summary());

    // Average final ξ per home zone.
    let mut sums = vec![0.0f64; zones];
    let mut counts = vec![0u32; zones];
    for n in &report.node_summaries {
        let z = home_zone_assignment(n.id.0, zones);
        sums[z.0] += n.final_metric;
        counts[z.0] += 1;
    }
    let means: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(s, &c)| if c > 0 { s / f64::from(c) } else { 0.0 })
        .collect();

    println!("mean final ξ by home zone (brighter = higher; sinks at zones 4, 12, 20):");
    println!("{}", heatmap(&means, params.zone_cols));

    // Delay distribution.
    let buckets: Vec<f64> = (0..report.delay_hist.buckets())
        .map(|i| report.delay_hist.bucket_count(i) as f64)
        .collect();
    println!(
        "delivery-delay distribution (0 … {} s):",
        report.duration_secs
    );
    println!("{}\n", sparkline(&buckets));

    // Energy spread across sensors.
    let mut energies: Vec<f64> = report.node_summaries.iter().map(|n| n.energy_j).collect();
    energies.sort_by(|a, b| a.partial_cmp(b).expect("finite energy"));
    println!("per-sensor energy, sorted (J):");
    println!("{}", sparkline(&energies));
    println!(
        "min {:.1} J, median {:.1} J, max {:.1} J — relays near sinks work hardest",
        energies.first().copied().unwrap_or(0.0),
        energies[energies.len() / 2],
        energies.last().copied().unwrap_or(0.0),
    );
}
