#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 test suite, and a perf
# smoke run. Everything here must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 tests (release build + root test suite)"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace --release -q

echo "==> golden determinism baseline (empty fault plan must change nothing)"
cargo test --release -q --test determinism_baseline

echo "==> fault-injection smoke (crashes + link drops must register)"
fault_json=$(cargo run --release -q -p dftmsn-cli -- run --protocol OPT \
    --sensors 20 --sinks 2 --duration 2000 --seed 1 \
    --fault-plan "crash=0.3;linkdrop=0.2" --json)
echo "$fault_json" | grep -q '"crashes":[1-9]' \
    || { echo "fault smoke: no crashes counted"; exit 1; }
echo "$fault_json" | grep -q '"frames_dropped":[1-9]' \
    || { echo "fault smoke: no frames dropped"; exit 1; }

echo "==> observe smoke (run --observe JSONL + inspect round trip)"
obs_file=target/ci_observe.jsonl
cargo run --release -q -p dftmsn-cli -- run --protocol OPT \
    --sensors 20 --sinks 2 --duration 2000 --seed 1 \
    --observe "$obs_file" --window 100 >/dev/null
grep -q '"schema":"dftmsn-observe/1"' "$obs_file" \
    || { echo "observe smoke: missing schema header"; exit 1; }
grep -q '"totals":true' "$obs_file" \
    || { echo "observe smoke: missing totals line"; exit 1; }
inspect_out=$(cargo run --release -q -p dftmsn-cli -- inspect "$obs_file")
echo "$inspect_out" | grep -q 'deliveries' \
    || { echo "observe smoke: inspect failed to summarize"; exit 1; }

echo "==> checkpoint/resume determinism gate (resumed run must be bit-identical)"
cargo test --release -q --test checkpoint_resume
ck=target/ci_ckpt.ckpt
rm -f "$ck" "$ck.bak" target/ci_ckpt_full.jsonl target/ci_ckpt_part.jsonl
full_json=$(cargo run --release -q -p dftmsn-cli -- run --protocol OPT \
    --sensors 20 --sinks 2 --duration 2000 --seed 1 \
    --observe target/ci_ckpt_full.jsonl --window 100 --json)
cargo run --release -q -p dftmsn-cli -- run --protocol OPT \
    --sensors 20 --sinks 2 --duration 2000 --seed 1 \
    --observe target/ci_ckpt_part.jsonl --window 100 \
    --checkpoint "$ck" --checkpoint-every 900 >/dev/null
resumed_json=$(cargo run --release -q -p dftmsn-cli -- run --resume "$ck" \
    --observe target/ci_ckpt_part.jsonl --window 100 --json)
cmp -s target/ci_ckpt_full.jsonl target/ci_ckpt_part.jsonl \
    || { echo "checkpoint gate: resumed observe stream is not byte-identical"; exit 1; }
[ "$full_json" = "$resumed_json" ] \
    || { echo "checkpoint gate: resumed report differs from the uninterrupted run"; exit 1; }

echo "==> corrupt-checkpoint rejection smoke (must refuse with exit code 4)"
cp "$ck" target/ci_ckpt_bad.ckpt
rm -f target/ci_ckpt_bad.ckpt.bak
printf 'X' | dd of=target/ci_ckpt_bad.ckpt bs=1 seek=100 conv=notrunc status=none
set +e
cargo run --release -q -p dftmsn-cli -- run --resume target/ci_ckpt_bad.ckpt \
    >/dev/null 2>target/ci_ckpt_bad.err
bad_rc=$?
set -e
[ "$bad_rc" -eq 4 ] \
    || { echo "corrupt checkpoint gate: expected exit 4, got $bad_rc"; exit 1; }
grep -qi 'checksum\|corrupt' target/ci_ckpt_bad.err \
    || { echo "corrupt checkpoint gate: no diagnostic on stderr"; exit 1; }

echo "==> shard-parity gate (N-shard scale cell must be bit-identical to 1-shard)"
cargo run --release -q -p dftmsn-bench --bin shard_parity

echo "==> thread-parity gate (parallel interval executor must be bit-identical to sequential)"
cargo run --release -q -p dftmsn-bench --bin thread_parity

echo "==> policy-parity gate (builtin variants bit-identical through the trait; policy goldens)"
cargo test --release -q --test policy_parity
cargo run --release -q -p dftmsn-cli -- run --policy twohop:budget=3 \
    --sensors 10 --sinks 2 --duration 300 --json >/dev/null \
    || { echo "policy smoke: run --policy failed"; exit 1; }

echo "==> adversary-parity gate (all-honest runs bit-identical; adversarial runs seed-deterministic)"
# Quiet-run bit-identity across all 24 goldens (behavior machinery compiled
# in but dormant) plus the stacked behavior+fault and lifetime suites.
cargo test --release -q --test determinism_baseline
cargo test --release -q --test lazy_mobility_baseline
cargo test --release -q --test behavior
# Seeded 25%-selfish determinism smoke: two identical invocations must
# produce byte-equal JSON reports.
adv_a=$(cargo run --release -q -p dftmsn-cli -- run --protocol OPT \
    --sensors 20 --sinks 2 --duration 2000 --seed 1 \
    --behaviors "selfish=0.25" --json)
adv_b=$(cargo run --release -q -p dftmsn-cli -- run --protocol OPT \
    --sensors 20 --sinks 2 --duration 2000 --seed 1 \
    --behaviors "selfish=0.25" --json)
[ "$adv_a" = "$adv_b" ] \
    || { echo "adversary gate: selfish run is not seed-deterministic"; exit 1; }
echo "$adv_a" | grep -q '"behavior_changes":[1-9]' \
    || { echo "adversary gate: no behavior changes counted"; exit 1; }
cargo run --release -q -p dftmsn-cli -- run --behaviors "liar=0.1;blackhole=0.1@500" \
    --sensors 10 --sinks 2 --duration 300 --json >/dev/null \
    || { echo "adversary smoke: run --behaviors failed"; exit 1; }

echo "==> public-API surface gate (drift must be declared in API_SURFACE.txt)"
cargo run --release -q -p dftmsn-bench --bin api_surface -- --check

echo "==> docs build cleanly (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> perf baseline smoke + executor speedup gate (--quick --scale --speedup-check)"
# --speedup-check: on a host with enough cores, the best ticked threads>1
# cell must clear 1.5x sequential throughput; on smaller hosts scaling is
# unfalsifiable and the gate records lower bounds and passes. Escape
# hatch for legitimately noisy multicore hosts: SPEEDUP_CHECK_WARN_ONLY=1.
cargo run --release -p dftmsn-bench --bin perf_baseline -- --quick --scale \
    --speedup-check ${SPEEDUP_CHECK_WARN_ONLY:+--warn-only} \
    --out target/BENCH_engine.quick.json

echo "==> scale-tier regression gate (failing; >25% ns/event over committed BENCH_engine.json)"
# Escape hatch for hardware that legitimately differs from the machine
# behind the committed baseline: SCALE_CHECK_WARN_ONLY=1 ./ci.sh
cargo run --release -p dftmsn-bench --bin scale_check -- \
    ${SCALE_CHECK_WARN_ONLY:+--warn-only}

echo "CI OK"
