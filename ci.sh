#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 test suite, and a perf
# smoke run. Everything here must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 tests (release build + root test suite)"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace --release -q

echo "==> perf baseline smoke (--quick; discards output)"
cargo run --release -p dftmsn-bench --bin perf_baseline -- --quick --out target/BENCH_engine.quick.json

echo "CI OK"
