#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 test suite, and a perf
# smoke run. Everything here must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 tests (release build + root test suite)"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace --release -q

echo "==> golden determinism baseline (empty fault plan must change nothing)"
cargo test --release -q --test determinism_baseline

echo "==> fault-injection smoke (crashes + link drops must register)"
fault_json=$(cargo run --release -q -p dftmsn-cli -- run --protocol OPT \
    --sensors 20 --sinks 2 --duration 2000 --seed 1 \
    --fault-plan "crash=0.3;linkdrop=0.2" --json)
echo "$fault_json" | grep -q '"crashes":[1-9]' \
    || { echo "fault smoke: no crashes counted"; exit 1; }
echo "$fault_json" | grep -q '"frames_dropped":[1-9]' \
    || { echo "fault smoke: no frames dropped"; exit 1; }

echo "==> observe smoke (run --observe JSONL + inspect round trip)"
obs_file=target/ci_observe.jsonl
cargo run --release -q -p dftmsn-cli -- run --protocol OPT \
    --sensors 20 --sinks 2 --duration 2000 --seed 1 \
    --observe "$obs_file" --window 100 >/dev/null
grep -q '"schema":"dftmsn-observe/1"' "$obs_file" \
    || { echo "observe smoke: missing schema header"; exit 1; }
grep -q '"totals":true' "$obs_file" \
    || { echo "observe smoke: missing totals line"; exit 1; }
inspect_out=$(cargo run --release -q -p dftmsn-cli -- inspect "$obs_file")
echo "$inspect_out" | grep -q 'deliveries' \
    || { echo "observe smoke: inspect failed to summarize"; exit 1; }

echo "==> docs build cleanly (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> perf baseline smoke (--quick --scale; discards output)"
cargo run --release -p dftmsn-bench --bin perf_baseline -- --quick --scale --out target/BENCH_engine.quick.json

echo "==> scale-tier regression guard (warn-only, vs committed BENCH_engine.json)"
cargo run --release -p dftmsn-bench --bin scale_check

echo "CI OK"
