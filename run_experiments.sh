#!/bin/sh
# Regenerates every experiment table into results/ (full fig2; trend
# studies at 15000 s x 2 seeds to bound single-core wall time).
set -e
cd "$(dirname "$0")"
./target/release/fig2                          > results/fig2_run.log 2>&1
./target/release/ablation --seeds 2           > results/ablation_run.log 2>&1
./target/release/density --seeds 2 --duration 15000 > results/density_run.log 2>&1
./target/release/speed   --seeds 2 --duration 15000 > results/speed_run.log 2>&1
./target/release/opt_tables                   > results/opt_tables_run.log 2>&1
echo DONE > results/ALL_DONE
