//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! so they are serde-ready when the real dependency is available, but all
//! actual serialization in this repository goes through the hand-rolled
//! writer in `dftmsn-metrics::json`. These derives accept the same syntax
//! (including `#[serde(...)]` helper attributes) and expand to nothing,
//! which keeps the annotations compiling in a network-less container.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
