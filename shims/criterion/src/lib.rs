//! Offline stand-in for `criterion`.
//!
//! The container has no network access, so the real crate cannot be
//! fetched. This shim keeps `cargo bench` working with the API subset the
//! workspace's benches use — `Criterion::bench_function`,
//! `benchmark_group`/`bench_with_input`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros — measuring with plain
//! `std::time::Instant` and printing mean ns/iter per benchmark.
//!
//! It has no statistical machinery: each benchmark warms up briefly,
//! sizes an iteration batch to a time target scaled by `sample_size`,
//! and reports the mean over the fastest half of the samples (robust to
//! scheduler noise). A name substring passed on the command line filters
//! which benchmarks run, like the real harness.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample time target: `sample_size` samples of roughly this length
/// are taken per benchmark.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);

/// The bench harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes (builder-style).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Reads a benchmark-name filter from the command line (the harness
    /// binaries are invoked as `bench --bench <file> [filter]`).
    pub fn configure_from_args(&mut self) {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }
}

/// A named benchmark group (a prefix plus an optional sample-size
/// override).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.0, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.0, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; for API compatibility).
    pub fn finish(self) {}

    fn run<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.parent.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut bencher = Bencher::new(samples);
        f(&mut bencher);
        bencher.report(&full);
    }
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id that is just the rendered parameter.
    #[must_use]
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// A `name/parameter` id.
    #[must_use]
    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

/// Passed to the benchmark closure; its [`iter`](Bencher::iter) method
/// times the workload.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Mean ns/iter of each sample.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `f`, storing per-sample mean iteration times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: grow the batch until one batch takes
        // at least the sample target (or a single iteration dominates).
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET || batch >= 1 << 20 {
                break;
            }
            // Aim directly for the target with a safety factor of 2.
            let scale = (SAMPLE_TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9))
                .ceil()
                .min(1024.0);
            batch = (batch * scale as u64 * 2).clamp(batch + 1, 1 << 20);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }

    fn report(mut self, name: &str) {
        if self.samples.is_empty() {
            println!("bench {name:<50} (no measurement)");
            return;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        // Mean of the fastest half: robust against scheduler noise.
        let half = &self.samples[..self.samples.len().div_ceil(2)];
        let mean = half.iter().sum::<f64>() / half.len() as f64;
        println!("bench {name:<50} {:>14} ns/iter", format_ns(mean));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else if ns >= 1_000.0 {
        let v = ns as u64;
        // Thousands separators for readability.
        let s = v.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(c);
        }
        out
    } else {
        format!("{ns:.1}")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            c.configure_from_args();
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
