//! The strategy subset: ranges, tuples, `any`, and `prop_map`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of test values, mirroring `proptest::strategy::Strategy`
/// minus shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Types with a canonical whole-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end - self.start);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = u64::from(hi - lo);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64);

// usize needs its own expansion: `u64::from(usize)` does not exist.
impl Strategy for Range<usize> {
    type Value = usize;

    #[allow(clippy::cast_possible_truncation)]
    fn new_value(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end - self.start) as u64;
        self.start + rng.below(span) as usize
    }
}

impl Strategy for RangeInclusive<usize> {
    type Value = usize;

    #[allow(clippy::cast_possible_truncation)]
    fn new_value(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as usize;
        }
        lo + rng.below(span + 1) as usize
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Draw over the closed interval; hitting `hi` exactly matters for
        // boundary-condition tests.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+ $(,)?))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}
