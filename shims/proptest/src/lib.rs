//! Offline stand-in for `proptest`.
//!
//! The container has no network access, so the real crate cannot be
//! fetched. This shim implements the subset of the proptest API the
//! workspace's property tests use — the `proptest!` macro with `arg in
//! strategy` bindings, `#![proptest_config(..)]`, range/tuple/`any`
//! strategies, `collection::vec`, `prop_map`, and the `prop_assert*`
//! macros — on top of a small deterministic PRNG.
//!
//! Differences from the real crate, by design:
//!
//! * cases are generated from a fixed seed derived from the test name, so
//!   every run replays the same inputs (no `.proptest-regressions`
//!   persistence and no flakiness);
//! * there is no shrinking: a failing case reports its case number and
//!   panics with the underlying assertion message;
//! * `PROPTEST_CASES` in the environment overrides the per-test case
//!   count, exactly like the real crate's env override.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly used exports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test (panics on failure, like
/// `assert!`; the runner reports the failing case number).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]`-able function that evaluates `body` over
/// deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = $crate::test_runner::case_count(config.cases);
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..cases {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut rng,
                        );
                    )+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest shim: {} failed on case {}/{}",
                            stringify!($name), case + 1, cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
