//! The deterministic runner state behind the `proptest!` macro.

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Resolves the effective case count, honouring the `PROPTEST_CASES`
/// environment override.
#[must_use]
pub fn case_count(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
}

/// A small, fast, deterministic PRNG (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name so each test replays the same
    /// cases on every run.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
