//! Offline stand-in for the `serde` facade.
//!
//! This container builds without network access, so the real serde cannot
//! be fetched. The workspace only uses serde as forward-looking derive
//! annotations — every byte actually written to disk goes through
//! `dftmsn-metrics::json` — so a marker-trait shim is enough to keep the
//! annotations compiling. Swap the `[workspace.dependencies]` path back to
//! the registry version to regain real serialization support.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

/// The `serde::de` module namespace, for `serde::de::DeserializeOwned`
/// bounds.
pub mod de {
    pub use super::DeserializeOwned;
}
